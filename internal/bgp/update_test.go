package bgp

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func TestPrefixWireRoundTrip(t *testing.T) {
	tests := []string{
		"0.0.0.0/0", "10.0.0.0/8", "192.0.2.0/24", "198.51.100.128/25",
		"203.0.113.255/32", "172.16.0.0/12",
	}
	for _, s := range tests {
		p := MustParsePrefix(s)
		wire := p.AppendWire(nil)
		got, n, err := DecodePrefixIPv4(wire)
		if err != nil {
			t.Errorf("%s: %v", s, err)
			continue
		}
		if n != len(wire) {
			t.Errorf("%s: consumed %d of %d bytes", s, n, len(wire))
		}
		if got != p {
			t.Errorf("%s: round trip = %v", s, got)
		}
	}
}

func TestPrefixWireRoundTripIPv6(t *testing.T) {
	p := MustParsePrefix("2001:db8::/32")
	wire := p.AppendWire(nil)
	got, n, err := DecodePrefixIPv6(wire)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(wire) || got != p {
		t.Errorf("round trip = %v (%d bytes)", got, n)
	}
}

func TestDecodePrefixErrors(t *testing.T) {
	if _, _, err := DecodePrefixIPv4(nil); err == nil {
		t.Error("empty buffer: want error")
	}
	if _, _, err := DecodePrefixIPv4([]byte{33, 1, 2, 3, 4, 5}); err == nil {
		t.Error("/33 IPv4: want error")
	}
	if _, _, err := DecodePrefixIPv4([]byte{24, 1, 2}); err == nil {
		t.Error("truncated address: want error")
	}
}

func TestPrefixWireQuick(t *testing.T) {
	f := func(a, b, c, d byte, bits uint8) bool {
		bl := int(bits) % 33
		addr := netip.AddrFrom4([4]byte{a, b, c, d})
		p := PrefixFrom(addr, bl)
		wire := p.AppendWire(nil)
		got, n, err := DecodePrefixIPv4(wire)
		return err == nil && n == len(wire) && got == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func testAttrs() PathAttributes {
	return PathAttributes{
		HasOrigin:    true,
		Origin:       OriginIGP,
		ASPath:       NewASPath(65269, 7018, 1299, 64496),
		HasNextHop:   true,
		NextHop:      netip.MustParseAddr("198.51.100.1"),
		HasMED:       true,
		MED:          20,
		HasLocalPref: true,
		LocalPref:    120,
		Communities: Communities{
			NewCommunity(1299, 2569),
			NewCommunity(1299, 35130),
			CommunityNoExport,
		},
		ExtCommunities: []ExtendedCommunity{
			{Type: ExtCommTypeTransitive4ByteAS, SubType: 0x02, Global: 196615, Local: 44},
		},
		LargeCommunities: LargeCommunities{
			{GlobalAdmin: 197000, LocalData1: 1, LocalData2: 2},
		},
	}
}

func TestUpdateEncodeDecodeRoundTrip(t *testing.T) {
	m := &UpdateMessage{
		Withdrawn: []Prefix{MustParsePrefix("10.1.0.0/16")},
		Attrs:     testAttrs(),
		NLRI:      []Prefix{MustParsePrefix("192.0.2.0/24"), MustParsePrefix("198.51.100.0/24")},
	}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Withdrawn, m.Withdrawn) {
		t.Errorf("Withdrawn = %v", got.Withdrawn)
	}
	if !reflect.DeepEqual(got.NLRI, m.NLRI) {
		t.Errorf("NLRI = %v", got.NLRI)
	}
	if !got.Attrs.ASPath.Equal(m.Attrs.ASPath) {
		t.Errorf("ASPath = %v", got.Attrs.ASPath)
	}
	if !reflect.DeepEqual(got.Attrs.Communities, m.Attrs.Communities) {
		t.Errorf("Communities = %v", got.Attrs.Communities)
	}
	if !reflect.DeepEqual(got.Attrs.LargeCommunities, m.Attrs.LargeCommunities) {
		t.Errorf("LargeCommunities = %v", got.Attrs.LargeCommunities)
	}
	if !reflect.DeepEqual(got.Attrs.ExtCommunities, m.Attrs.ExtCommunities) {
		t.Errorf("ExtCommunities = %v", got.Attrs.ExtCommunities)
	}
	if !got.Attrs.HasLocalPref || got.Attrs.LocalPref != 120 {
		t.Errorf("LocalPref = %v/%d", got.Attrs.HasLocalPref, got.Attrs.LocalPref)
	}
	if !got.Attrs.HasMED || got.Attrs.MED != 20 {
		t.Errorf("MED = %v/%d", got.Attrs.HasMED, got.Attrs.MED)
	}
	if !got.Attrs.HasNextHop || got.Attrs.NextHop != m.Attrs.NextHop {
		t.Errorf("NextHop = %v", got.Attrs.NextHop)
	}
	if !got.Attrs.HasOrigin || got.Attrs.Origin != OriginIGP {
		t.Errorf("Origin = %v/%d", got.Attrs.HasOrigin, got.Attrs.Origin)
	}
}

func TestUpdateMinimal(t *testing.T) {
	// A keepalive-shaped UPDATE: no withdrawn, no NLRI, empty attrs except
	// the mandatory (empty) AS_PATH.
	m := &UpdateMessage{}
	wire, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Withdrawn) != 0 || len(got.NLRI) != 0 {
		t.Errorf("got %+v", got)
	}
	if !got.Attrs.ASPath.Empty() {
		t.Errorf("ASPath = %v", got.Attrs.ASPath)
	}
}

func TestUpdateTooLarge(t *testing.T) {
	m := &UpdateMessage{}
	for i := 0; i < 2000; i++ {
		m.NLRI = append(m.NLRI, MustParsePrefix("192.0.2.0/24"))
	}
	if _, err := m.Encode(); err == nil {
		t.Error("oversized UPDATE: want error")
	}
}

func TestDecodeUpdateErrors(t *testing.T) {
	good, err := (&UpdateMessage{NLRI: []Prefix{MustParsePrefix("192.0.2.0/24")}}).Encode()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("short", func(t *testing.T) {
		if _, err := DecodeUpdate(good[:10]); err == nil {
			t.Error("want error")
		}
	})
	t.Run("bad marker", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[3] = 0
		if _, err := DecodeUpdate(bad); err == nil {
			t.Error("want error")
		}
	})
	t.Run("bad type", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[18] = MsgTypeKeepalive
		if _, err := DecodeUpdate(bad); err == nil {
			t.Error("want error")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeUpdate(good[:len(good)-1]); err == nil {
			t.Error("want error")
		}
	})
	t.Run("bad length", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[16], bad[17] = 0, 5 // < header size
		if _, err := DecodeUpdate(bad); err == nil {
			t.Error("want error")
		}
	})
}

func TestDecodeAttrsErrors(t *testing.T) {
	cases := map[string][]byte{
		"truncated header":  {0x40},
		"truncated extlen":  {0x50, AttrASPath, 0x00},
		"short payload":     {0x40, AttrOrigin, 5, 1},
		"origin wrong size": {0x40, AttrOrigin, 2, 0, 0},
		"med wrong size":    {0x80, AttrMED, 3, 0, 0, 0},
		"nexthop wrong":     {0x40, AttrNextHop, 3, 1, 2, 3},
		"localpref wrong":   {0x40, AttrLocalPref, 2, 0, 1},
		"communities %4":    {0xc0, AttrCommunities, 3, 1, 2, 3},
		"large comm %12":    {0xc0, AttrLargeCommunities, 4, 1, 2, 3, 4},
		"ext comm %8":       {0xc0, AttrExtCommunities, 4, 1, 2, 3, 4},
		"aspath bad type":   {0x40, AttrASPath, 3, 9, 1, 0},
		"aspath truncated":  {0x40, AttrASPath, 4, 2, 2, 0, 0},
	}
	for name, buf := range cases {
		var a PathAttributes
		if err := DecodeAttrs(buf, &a); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestDecodeAttrsSkipsUnknown(t *testing.T) {
	// Attribute 99 with 2-byte payload, then a valid ORIGIN.
	buf := []byte{0xc0, 99, 2, 0xaa, 0xbb, 0x40, AttrOrigin, 1, OriginEGP}
	var a PathAttributes
	if err := DecodeAttrs(buf, &a); err != nil {
		t.Fatal(err)
	}
	if !a.HasOrigin || a.Origin != OriginEGP {
		t.Errorf("attrs = %+v", a)
	}
}

func TestASPathWireSegmentSplit(t *testing.T) {
	// Paths longer than 255 ASNs must be split into multiple wire segments
	// and merge back into one on decode.
	asns := make([]uint32, 300)
	for i := range asns {
		asns[i] = uint32(i + 1)
	}
	p := NewASPath(asns...)
	wire := appendASPath(nil, p)
	got, err := decodeASPath(wire, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Errorf("round trip lost structure: %d segments", len(got.Segments))
	}
}

func TestUpdateRoundTripRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		var m UpdateMessage
		m.Attrs.HasOrigin = true
		m.Attrs.Origin = uint8(rng.Intn(3))
		n := 1 + rng.Intn(6)
		asns := make([]uint32, n)
		for i := range asns {
			asns[i] = uint32(1 + rng.Intn(1<<16))
		}
		m.Attrs.ASPath = NewASPath(asns...)
		nc := rng.Intn(8)
		for i := 0; i < nc; i++ {
			m.Attrs.Communities = append(m.Attrs.Communities,
				NewCommunity(uint16(rng.Intn(1<<16)), uint16(rng.Intn(1<<16))))
		}
		np := 1 + rng.Intn(4)
		for i := 0; i < np; i++ {
			addr := netip.AddrFrom4([4]byte{byte(rng.Intn(224)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
			m.NLRI = append(m.NLRI, PrefixFrom(addr, 8+rng.Intn(17)))
		}
		wire, err := m.Encode()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := DecodeUpdate(wire)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !got.Attrs.ASPath.Equal(m.Attrs.ASPath) {
			t.Fatalf("trial %d: as path", trial)
		}
		if len(got.Attrs.Communities) != len(m.Attrs.Communities) {
			t.Fatalf("trial %d: communities %d != %d", trial, len(got.Attrs.Communities), len(m.Attrs.Communities))
		}
		for i := range m.Attrs.Communities {
			if got.Attrs.Communities[i] != m.Attrs.Communities[i] {
				t.Fatalf("trial %d: community %d", trial, i)
			}
		}
		if !reflect.DeepEqual(got.NLRI, m.NLRI) {
			t.Fatalf("trial %d: nlri %v != %v", trial, got.NLRI, m.NLRI)
		}
	}
}

// encode16 builds a 2-octet AS_PATH attribute payload for legacy-session
// tests.
func encode16(segType uint8, asns ...uint16) []byte {
	out := []byte{segType, byte(len(asns))}
	for _, a := range asns {
		out = append(out, byte(a>>8), byte(a))
	}
	return out
}

// encode32 builds a 4-octet AS_PATH attribute payload (AS4_PATH).
func encode32(segType uint8, asns ...uint32) []byte {
	out := []byte{segType, byte(len(asns))}
	for _, a := range asns {
		out = append(out, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return out
}

// buildLegacyUpdate assembles a full 2-octet-session UPDATE with the
// given AS_PATH and optional AS4_PATH payloads.
func buildLegacyUpdate(t *testing.T, asPath, as4Path []byte) []byte {
	t.Helper()
	var attrs []byte
	attrs = append(attrs, 0x40, AttrOrigin, 1, OriginIGP)
	attrs = append(attrs, 0x40, AttrASPath, byte(len(asPath)))
	attrs = append(attrs, asPath...)
	if as4Path != nil {
		attrs = append(attrs, 0xc0, AttrAS4Path, byte(len(as4Path)))
		attrs = append(attrs, as4Path...)
	}
	nlri := MustParsePrefix("192.0.2.0/24").AppendWire(nil)
	total := 19 + 2 + 2 + len(attrs) + len(nlri)
	out := make([]byte, 0, total)
	for i := 0; i < 16; i++ {
		out = append(out, 0xff)
	}
	out = append(out, byte(total>>8), byte(total), MsgTypeUpdate)
	out = append(out, 0, 0) // no withdrawn
	out = append(out, byte(len(attrs)>>8), byte(len(attrs)))
	out = append(out, attrs...)
	out = append(out, nlri...)
	return out
}

func TestDecodeUpdateSized2Octet(t *testing.T) {
	wire := buildLegacyUpdate(t, encode16(SegmentTypeASSequence, 65269, 7018, 1299, 64496), nil)
	m, err := DecodeUpdateSized(wire, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := NewASPath(65269, 7018, 1299, 64496)
	if !m.Attrs.ASPath.Equal(want) {
		t.Errorf("path = %v, want %v", m.Attrs.ASPath, want)
	}
	// The same bytes decoded as 4-octet must fail or mis-parse, never
	// panic.
	_, _ = DecodeUpdateSized(wire, 4)
	if _, err := DecodeUpdateSized(wire, 3); err == nil {
		t.Error("ASN width 3 accepted")
	}
}

func TestDecodeUpdateAS4PathMerge(t *testing.T) {
	// Legacy AS_PATH: [65269 23456 23456 64496]; AS4_PATH supplies the
	// true tail [196613 196614 64496]. RFC 6793: keep the leading
	// len(AS_PATH)-len(AS4_PATH)=1 hop, then the AS4_PATH.
	wire := buildLegacyUpdate(t,
		encode16(SegmentTypeASSequence, 65269, 23456, 23456, 64496),
		encode32(SegmentTypeASSequence, 196613, 196614, 64496))
	m, err := DecodeUpdateSized(wire, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := NewASPath(65269, 196613, 196614, 64496)
	if !m.Attrs.ASPath.Equal(want) {
		t.Errorf("merged path = %v, want %v", m.Attrs.ASPath, want)
	}
}

func TestDecodeUpdateAS4PathLongerIgnored(t *testing.T) {
	// An AS4_PATH longer than AS_PATH must be ignored (RFC 6793).
	wire := buildLegacyUpdate(t,
		encode16(SegmentTypeASSequence, 65269, 64496),
		encode32(SegmentTypeASSequence, 1, 2, 3, 4, 5))
	m, err := DecodeUpdateSized(wire, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := NewASPath(65269, 64496)
	if !m.Attrs.ASPath.Equal(want) {
		t.Errorf("path = %v, want %v (AS4_PATH ignored)", m.Attrs.ASPath, want)
	}
}

func TestMergeAS4PathWithSets(t *testing.T) {
	// AS_PATH: seq[10] set{20,30} seq[23456] (3 hops); AS4_PATH: seq[99999]
	// (1 hop). Keep 2 leading hops (seq[10] + the whole set), then the
	// AS4_PATH sequence.
	asPath := ASPath{Segments: []PathSegment{
		{Type: SegmentTypeASSequence, ASNs: []uint32{10}},
		{Type: SegmentTypeASSet, ASNs: []uint32{20, 30}},
		{Type: SegmentTypeASSequence, ASNs: []uint32{ASTrans}},
	}}
	as4 := NewASPath(99999)
	got := MergeAS4Path(asPath, as4)
	if got.Len() != 3 {
		t.Fatalf("merged len = %d, want 3", got.Len())
	}
	if !got.Contains(99999) || got.Contains(ASTrans) {
		t.Errorf("merged = %v", got)
	}
	if !got.Contains(20) || !got.Contains(30) {
		t.Errorf("set lost in merge: %v", got)
	}
}

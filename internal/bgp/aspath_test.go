package bgp

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewASPathBasics(t *testing.T) {
	p := NewASPath(65269, 7018, 1299, 64496)
	if p.Empty() {
		t.Fatal("Empty() = true")
	}
	if got := p.Len(); got != 4 {
		t.Errorf("Len() = %d, want 4", got)
	}
	if first, ok := p.First(); !ok || first != 65269 {
		t.Errorf("First() = %d,%v", first, ok)
	}
	if origin, ok := p.Origin(); !ok || origin != 64496 {
		t.Errorf("Origin() = %d,%v", origin, ok)
	}
	if !p.Contains(1299) || p.Contains(3356) {
		t.Error("Contains misbehaves")
	}
	if got := p.String(); got != "65269 7018 1299 64496" {
		t.Errorf("String() = %q", got)
	}
}

func TestEmptyASPath(t *testing.T) {
	var p ASPath
	if !p.Empty() {
		t.Error("zero path not Empty")
	}
	if _, ok := p.Origin(); ok {
		t.Error("Origin of empty path ok")
	}
	if _, ok := p.First(); ok {
		t.Error("First of empty path ok")
	}
	if p.Len() != 0 {
		t.Error("Len of empty path != 0")
	}
	if p.Key() != "" {
		t.Errorf("Key of empty path = %q", p.Key())
	}
}

func TestASPathPrepend(t *testing.T) {
	p := NewASPath(3356, 64496)
	p.Prepend(1299, 3)
	want := []uint32{1299, 1299, 1299, 3356, 64496}
	if got := p.Flatten(); !reflect.DeepEqual(got, want) {
		t.Errorf("Flatten() = %v, want %v", got, want)
	}
	if got := p.Len(); got != 5 {
		t.Errorf("Len() = %d, want 5", got)
	}

	// Prepending onto an empty path creates a sequence.
	var q ASPath
	q.Prepend(7018, 1)
	if got := q.Flatten(); !reflect.DeepEqual(got, []uint32{7018}) {
		t.Errorf("Flatten() = %v", got)
	}

	// Prepending onto a leading AS_SET creates a new sequence segment.
	r := ASPath{Segments: []PathSegment{{Type: SegmentTypeASSet, ASNs: []uint32{1, 2}}}}
	r.Prepend(9, 2)
	if len(r.Segments) != 2 || r.Segments[0].Type != SegmentTypeASSequence {
		t.Fatalf("segments = %+v", r.Segments)
	}
	if got := r.Len(); got != 3 { // 2 prepends + set counts as 1
		t.Errorf("Len() = %d, want 3", got)
	}

	// Zero or negative counts are no-ops.
	s := NewASPath(5)
	s.Prepend(6, 0)
	s.Prepend(6, -1)
	if got := s.Flatten(); !reflect.DeepEqual(got, []uint32{5}) {
		t.Errorf("Flatten() = %v", got)
	}
}

func TestASPathSetHandling(t *testing.T) {
	p := ASPath{Segments: []PathSegment{
		{Type: SegmentTypeASSequence, ASNs: []uint32{100, 200}},
		{Type: SegmentTypeASSet, ASNs: []uint32{300, 400}},
	}}
	if got := p.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3 (set counts once)", got)
	}
	if origin, ok := p.Origin(); !ok || origin != 300 {
		t.Errorf("Origin() = %d,%v, want 300 (first set member)", origin, ok)
	}
	if got := p.Key(); got != "100 200 {300,400}" {
		t.Errorf("Key() = %q", got)
	}
	if !p.Contains(400) {
		t.Error("Contains(400) = false")
	}
}

func TestASPathUnique(t *testing.T) {
	p := NewASPath(1299, 1299, 1299, 3356, 64496, 3356)
	if got := p.Unique(); !reflect.DeepEqual(got, []uint32{1299, 3356, 64496}) {
		t.Errorf("Unique() = %v", got)
	}
}

func TestASPathCloneIndependence(t *testing.T) {
	p := NewASPath(1, 2, 3)
	q := p.Clone()
	q.Prepend(9, 1)
	q.Segments[0].ASNs[1] = 77
	if !reflect.DeepEqual(p.Flatten(), []uint32{1, 2, 3}) {
		t.Errorf("Clone shares storage: %v", p.Flatten())
	}
}

func TestASPathEqual(t *testing.T) {
	a := NewASPath(1, 2, 3)
	b := NewASPath(1, 2, 3)
	c := NewASPath(1, 2)
	d := ASPath{Segments: []PathSegment{{Type: SegmentTypeASSet, ASNs: []uint32{1, 2, 3}}}}
	if !a.Equal(b) {
		t.Error("a != b")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("unequal paths compared equal")
	}
}

func TestParseASPath(t *testing.T) {
	tests := []struct {
		in   string
		want ASPath
	}{
		{"65269 7018 1299 64496", NewASPath(65269, 7018, 1299, 64496)},
		{"", ASPath{}},
		{"100 {200,300} 400", ASPath{Segments: []PathSegment{
			{Type: SegmentTypeASSequence, ASNs: []uint32{100}},
			{Type: SegmentTypeASSet, ASNs: []uint32{200, 300}},
			{Type: SegmentTypeASSequence, ASNs: []uint32{400}},
		}}},
	}
	for _, tc := range tests {
		got, err := ParseASPath(tc.in)
		if err != nil {
			t.Errorf("ParseASPath(%q): %v", tc.in, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("ParseASPath(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"1 2 x", "{1,2", "{a}", "99999999999999999999"} {
		if _, err := ParseASPath(bad); err == nil {
			t.Errorf("ParseASPath(%q): want error", bad)
		}
	}
}

func TestASPathKeyRoundTripQuick(t *testing.T) {
	// Property: Key -> ParseASPath -> Key is the identity for random
	// sequence-only paths.
	f := func(asns []uint32) bool {
		if len(asns) > 64 {
			asns = asns[:64]
		}
		p := NewASPath(asns...)
		q, err := ParseASPath(p.Key())
		return err == nil && q.Equal(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestASPathKeyRoundTripWithSets(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		var p ASPath
		nseg := 1 + rng.Intn(4)
		for s := 0; s < nseg; s++ {
			segType := SegmentTypeASSequence
			if rng.Intn(3) == 0 {
				segType = SegmentTypeASSet
			}
			n := 1 + rng.Intn(5)
			asns := make([]uint32, n)
			for i := range asns {
				asns[i] = uint32(rng.Intn(1 << 20))
			}
			// Adjacent sequences merge on parse; force alternation for a
			// canonical structure.
			if ls := len(p.Segments); ls > 0 && p.Segments[ls-1].Type == SegmentTypeASSequence && segType == SegmentTypeASSequence {
				segType = SegmentTypeASSet
			}
			p.Segments = append(p.Segments, PathSegment{Type: segType, ASNs: asns})
		}
		q, err := ParseASPath(p.Key())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !q.Equal(p) {
			t.Fatalf("trial %d: round trip %q -> %q", trial, p.Key(), q.Key())
		}
	}
}

package bgp

import (
	"fmt"
	"net/netip"
)

// Prefix is an NLRI prefix. It wraps netip.Prefix to get canonical
// comparable semantics while adding the BGP wire encoding (length octet
// followed by the minimum number of address octets, RFC 4271 §4.3).
type Prefix struct {
	netip.Prefix
}

// MustParsePrefix parses CIDR notation and panics on error; for tests and
// tables of constants.
func MustParsePrefix(s string) Prefix {
	return Prefix{netip.MustParsePrefix(s)}
}

// ParsePrefix parses CIDR notation, e.g. "192.0.2.0/24".
func ParsePrefix(s string) (Prefix, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return Prefix{}, fmt.Errorf("bgp: %v", err)
	}
	return Prefix{p.Masked()}, nil
}

// PrefixFrom assembles a prefix from an address and mask length.
func PrefixFrom(addr netip.Addr, bits int) Prefix {
	return Prefix{netip.PrefixFrom(addr, bits).Masked()}
}

// AppendWire appends the RFC 4271 NLRI encoding of the prefix: one length
// octet followed by ceil(bits/8) address octets.
func (p Prefix) AppendWire(dst []byte) []byte {
	bits := p.Bits()
	dst = append(dst, byte(bits))
	addr := p.Addr().AsSlice()
	n := (bits + 7) / 8
	return append(dst, addr[:n]...)
}

// decodePrefix decodes one NLRI prefix from buf, for the given address
// family (4 or 16 octet addresses). It returns the prefix and the number
// of bytes consumed.
func decodePrefix(buf []byte, addrLen int) (Prefix, int, error) {
	if len(buf) < 1 {
		return Prefix{}, 0, fmt.Errorf("bgp: truncated NLRI: no length octet")
	}
	bits := int(buf[0])
	if bits > addrLen*8 {
		return Prefix{}, 0, fmt.Errorf("bgp: NLRI length %d exceeds address size %d bits", bits, addrLen*8)
	}
	n := (bits + 7) / 8
	if len(buf) < 1+n {
		return Prefix{}, 0, fmt.Errorf("bgp: truncated NLRI: want %d address octets, have %d", n, len(buf)-1)
	}
	raw := make([]byte, addrLen)
	copy(raw, buf[1:1+n])
	var addr netip.Addr
	var ok bool
	if addrLen == 4 {
		addr, ok = netip.AddrFromSlice(raw[:4])
	} else {
		addr, ok = netip.AddrFromSlice(raw[:16])
	}
	if !ok {
		return Prefix{}, 0, fmt.Errorf("bgp: bad NLRI address bytes")
	}
	return PrefixFrom(addr, bits), 1 + n, nil
}

// DecodePrefixIPv4 decodes one IPv4 NLRI prefix from buf, returning the
// prefix and bytes consumed.
func DecodePrefixIPv4(buf []byte) (Prefix, int, error) { return decodePrefix(buf, 4) }

// DecodePrefixIPv6 decodes one IPv6 NLRI prefix from buf, returning the
// prefix and bytes consumed.
func DecodePrefixIPv6(buf []byte) (Prefix, int, error) { return decodePrefix(buf, 16) }

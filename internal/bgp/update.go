package bgp

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// BGP message types (RFC 4271 §4.1).
const (
	MsgTypeOpen         uint8 = 1
	MsgTypeUpdate       uint8 = 2
	MsgTypeNotification uint8 = 3
	MsgTypeKeepalive    uint8 = 4
)

// Path attribute type codes used by this package.
const (
	AttrOrigin           uint8 = 1
	AttrASPath           uint8 = 2
	AttrNextHop          uint8 = 3
	AttrMED              uint8 = 4
	AttrLocalPref        uint8 = 5
	AttrAtomicAggregate  uint8 = 6
	AttrAggregator       uint8 = 7
	AttrCommunities      uint8 = 8
	AttrExtCommunities   uint8 = 16
	AttrAS4Path          uint8 = 17
	AttrLargeCommunities uint8 = 32
)

// ASTrans is the 2-octet placeholder for ASNs that do not fit in 16
// bits (RFC 6793).
const ASTrans uint32 = 23456

// ORIGIN attribute values (RFC 4271 §4.3).
const (
	OriginIGP        uint8 = 0
	OriginEGP        uint8 = 1
	OriginIncomplete uint8 = 2
)

// Path attribute flag bits.
const (
	flagOptional   uint8 = 0x80
	flagTransitive uint8 = 0x40
	flagPartial    uint8 = 0x20
	flagExtLen     uint8 = 0x10
)

// maxMessageLen is the largest BGP message permitted by RFC 4271.
const maxMessageLen = 4096

// headerLen is the fixed BGP message header size (16-octet marker +
// 2-octet length + 1-octet type).
const headerLen = 19

// PathAttributes carries the route attributes this library models. Zero
// values mean "attribute absent" except Origin, whose presence is tracked
// by HasOrigin so OriginIGP (0) round-trips.
type PathAttributes struct {
	HasOrigin bool
	Origin    uint8

	ASPath ASPath

	HasNextHop bool
	NextHop    netip.Addr

	HasMED bool
	MED    uint32

	HasLocalPref bool
	LocalPref    uint32

	Communities      Communities
	ExtCommunities   []ExtendedCommunity
	LargeCommunities LargeCommunities
}

// UpdateMessage is a BGP UPDATE: withdrawn prefixes, path attributes, and
// announced prefixes (NLRI). Only IPv4 NLRI travels in the classic UPDATE
// body; this is all the corpus uses.
type UpdateMessage struct {
	Withdrawn []Prefix
	Attrs     PathAttributes
	NLRI      []Prefix
}

// appendAttr appends one path attribute with the correct flags, using the
// extended-length form when the payload exceeds 255 octets.
func appendAttr(dst []byte, flags, code uint8, payload []byte) []byte {
	if len(payload) > 255 {
		flags |= flagExtLen
	}
	dst = append(dst, flags, code)
	if flags&flagExtLen != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(payload)))
	} else {
		dst = append(dst, byte(len(payload)))
	}
	return append(dst, payload...)
}

// appendASPath encodes AS_PATH segments with 4-octet ASNs (RFC 6793
// encoding as used in BGP4MP_MESSAGE_AS4).
func appendASPath(dst []byte, p ASPath) []byte {
	for _, seg := range p.Segments {
		if len(seg.ASNs) == 0 {
			continue
		}
		// Segments hold at most 255 ASNs on the wire; split longer ones.
		for off := 0; off < len(seg.ASNs); off += 255 {
			end := off + 255
			if end > len(seg.ASNs) {
				end = len(seg.ASNs)
			}
			dst = append(dst, seg.Type, byte(end-off))
			for _, asn := range seg.ASNs[off:end] {
				dst = binary.BigEndian.AppendUint32(dst, asn)
			}
		}
	}
	return dst
}

// EncodeAttrs encodes the path attributes in ascending type-code order, as
// RFC 4271 requires.
func (a *PathAttributes) EncodeAttrs() []byte {
	var out []byte
	if a.HasOrigin {
		out = appendAttr(out, flagTransitive, AttrOrigin, []byte{a.Origin})
	}
	if !a.ASPath.Empty() {
		out = appendAttr(out, flagTransitive, AttrASPath, appendASPath(nil, a.ASPath))
	} else {
		// An empty AS_PATH attribute is still mandatory on eBGP updates;
		// emit a zero-length one so decoders see the attribute.
		out = appendAttr(out, flagTransitive, AttrASPath, nil)
	}
	if a.HasNextHop && a.NextHop.Is4() {
		nh := a.NextHop.As4()
		out = appendAttr(out, flagTransitive, AttrNextHop, nh[:])
	}
	if a.HasMED {
		out = appendAttr(out, flagOptional, AttrMED, binary.BigEndian.AppendUint32(nil, a.MED))
	}
	if a.HasLocalPref {
		out = appendAttr(out, flagTransitive, AttrLocalPref, binary.BigEndian.AppendUint32(nil, a.LocalPref))
	}
	if len(a.Communities) > 0 {
		payload := make([]byte, 0, 4*len(a.Communities))
		for _, c := range a.Communities {
			payload = binary.BigEndian.AppendUint32(payload, uint32(c))
		}
		out = appendAttr(out, flagOptional|flagTransitive, AttrCommunities, payload)
	}
	if len(a.ExtCommunities) > 0 {
		payload := make([]byte, 0, 8*len(a.ExtCommunities))
		for _, ec := range a.ExtCommunities {
			payload = append(payload, ec.Type, ec.SubType)
			payload = binary.BigEndian.AppendUint32(payload, ec.Global)
			payload = binary.BigEndian.AppendUint16(payload, ec.Local)
		}
		out = appendAttr(out, flagOptional|flagTransitive, AttrExtCommunities, payload)
	}
	if len(a.LargeCommunities) > 0 {
		payload := make([]byte, 0, 12*len(a.LargeCommunities))
		for _, lc := range a.LargeCommunities {
			payload = binary.BigEndian.AppendUint32(payload, lc.GlobalAdmin)
			payload = binary.BigEndian.AppendUint32(payload, lc.LocalData1)
			payload = binary.BigEndian.AppendUint32(payload, lc.LocalData2)
		}
		out = appendAttr(out, flagOptional|flagTransitive, AttrLargeCommunities, payload)
	}
	return out
}

// DecodeAttrs parses a path attribute block (the contents between the
// attribute-length field and the NLRI) into a, with 4-octet AS_PATH
// encoding. Unknown attributes are skipped; malformed ones abort with an
// error.
//
// Attribute payloads are decoded into a's existing slice capacity where
// possible, so a decode loop that recycles one PathAttributes per slot
// (calling ResetForReuse between records) runs allocation-free at
// steady state.
func DecodeAttrs(buf []byte, a *PathAttributes) error {
	return decodeAttrsSized(buf, a, 4)
}

// ResetForReuse clears a for decoding a fresh attribute block while
// retaining allocated slice capacity (AS_PATH segment and ASN arrays,
// community lists). Callers that recycle a PathAttributes across
// records must call it before each decode so absent attributes do not
// leak values from the previous record.
func (a *PathAttributes) ResetForReuse() {
	segs := a.ASPath.Segments[:0]
	comms := a.Communities[:0]
	ecs := a.ExtCommunities[:0]
	ls := a.LargeCommunities[:0]
	*a = PathAttributes{}
	a.ASPath.Segments = segs
	a.Communities = comms
	a.ExtCommunities = ecs
	a.LargeCommunities = ls
}

// decodeAttrsSized parses attributes with the given AS_PATH ASN width
// (2 for pre-RFC 6793 speakers, 4 otherwise). In 2-octet mode an
// AS4_PATH attribute, if present, is merged into the AS_PATH per
// RFC 6793 §4.2.3.
func decodeAttrsSized(buf []byte, a *PathAttributes, asnBytes int) error {
	var as4Path *ASPath
	for len(buf) > 0 {
		if len(buf) < 3 {
			return fmt.Errorf("bgp: truncated attribute header (%d bytes left)", len(buf))
		}
		flags, code := buf[0], buf[1]
		var alen, hdr int
		if flags&flagExtLen != 0 {
			if len(buf) < 4 {
				return fmt.Errorf("bgp: truncated extended-length attribute header")
			}
			alen = int(binary.BigEndian.Uint16(buf[2:4]))
			hdr = 4
		} else {
			alen = int(buf[2])
			hdr = 3
		}
		if len(buf) < hdr+alen {
			return fmt.Errorf("bgp: attribute %d: want %d payload bytes, have %d", code, alen, len(buf)-hdr)
		}
		payload := buf[hdr : hdr+alen]
		buf = buf[hdr+alen:]

		switch code {
		case AttrOrigin:
			if alen != 1 {
				return fmt.Errorf("bgp: ORIGIN: bad length %d", alen)
			}
			a.HasOrigin = true
			a.Origin = payload[0]
		case AttrASPath:
			if err := decodeASPathInto(payload, asnBytes, &a.ASPath); err != nil {
				return err
			}
		case AttrAS4Path:
			if asnBytes == 4 {
				// A 4-octet speaker must not see AS4_PATH; tolerate and
				// ignore it, as routers do.
				continue
			}
			p, err := decodeASPath(payload, 4)
			if err != nil {
				return err
			}
			as4Path = &p
		case AttrNextHop:
			if alen != 4 {
				return fmt.Errorf("bgp: NEXT_HOP: bad length %d", alen)
			}
			addr, _ := netip.AddrFromSlice(payload)
			a.HasNextHop = true
			a.NextHop = addr
		case AttrMED:
			if alen != 4 {
				return fmt.Errorf("bgp: MED: bad length %d", alen)
			}
			a.HasMED = true
			a.MED = binary.BigEndian.Uint32(payload)
		case AttrLocalPref:
			if alen != 4 {
				return fmt.Errorf("bgp: LOCAL_PREF: bad length %d", alen)
			}
			a.HasLocalPref = true
			a.LocalPref = binary.BigEndian.Uint32(payload)
		case AttrCommunities:
			if alen%4 != 0 {
				return fmt.Errorf("bgp: COMMUNITIES: length %d not a multiple of 4", alen)
			}
			cs := a.Communities[:0]
			if cap(cs) < alen/4 {
				cs = make(Communities, 0, alen/4)
			}
			for i := 0; i < alen; i += 4 {
				cs = append(cs, Community(binary.BigEndian.Uint32(payload[i:i+4])))
			}
			a.Communities = cs
		case AttrExtCommunities:
			if alen%8 != 0 {
				return fmt.Errorf("bgp: EXTENDED COMMUNITIES: length %d not a multiple of 8", alen)
			}
			ecs := a.ExtCommunities[:0]
			if cap(ecs) < alen/8 {
				ecs = make([]ExtendedCommunity, 0, alen/8)
			}
			for i := 0; i < alen; i += 8 {
				ecs = append(ecs, ExtendedCommunity{
					Type:    payload[i],
					SubType: payload[i+1],
					Global:  binary.BigEndian.Uint32(payload[i+2 : i+6]),
					Local:   binary.BigEndian.Uint16(payload[i+6 : i+8]),
				})
			}
			a.ExtCommunities = ecs
		case AttrLargeCommunities:
			if alen%12 != 0 {
				return fmt.Errorf("bgp: LARGE_COMMUNITY: length %d not a multiple of 12", alen)
			}
			ls := a.LargeCommunities[:0]
			if cap(ls) < alen/12 {
				ls = make(LargeCommunities, 0, alen/12)
			}
			for i := 0; i < alen; i += 12 {
				ls = append(ls, LargeCommunity{
					GlobalAdmin: binary.BigEndian.Uint32(payload[i : i+4]),
					LocalData1:  binary.BigEndian.Uint32(payload[i+4 : i+8]),
					LocalData2:  binary.BigEndian.Uint32(payload[i+8 : i+12]),
				})
			}
			a.LargeCommunities = ls
		default:
			// Unknown attribute: skipped. Transitive unknowns would be
			// propagated by a router; a decoder just moves on.
		}
	}
	if as4Path != nil {
		a.ASPath = MergeAS4Path(a.ASPath, *as4Path)
	}
	return nil
}

// MergeAS4Path reconstructs the true path from a 2-octet AS_PATH (with
// AS_TRANS placeholders) and the AS4_PATH attribute, per RFC 6793
// §4.2.3: when AS4_PATH is no longer than AS_PATH, the leading
// (len(AS_PATH) - len(AS4_PATH)) hops of AS_PATH are kept and AS4_PATH
// supplies the rest; otherwise AS4_PATH is ignored.
func MergeAS4Path(asPath, as4Path ASPath) ASPath {
	lenAS, lenAS4 := asPath.Len(), as4Path.Len()
	if lenAS4 > lenAS {
		return asPath
	}
	keep := lenAS - lenAS4
	out := ASPath{}
	remaining := keep
	for _, seg := range asPath.Segments {
		if remaining <= 0 {
			break
		}
		if seg.Type == SegmentTypeASSet {
			// A set counts as one hop and is kept whole.
			out.Segments = append(out.Segments, PathSegment{Type: seg.Type, ASNs: append([]uint32{}, seg.ASNs...)})
			remaining--
			continue
		}
		n := len(seg.ASNs)
		if n > remaining {
			n = remaining
		}
		out.Segments = append(out.Segments, PathSegment{Type: seg.Type, ASNs: append([]uint32{}, seg.ASNs[:n]...)})
		remaining -= n
	}
	for _, seg := range as4Path.Segments {
		if n := len(out.Segments); n > 0 && seg.Type == SegmentTypeASSequence &&
			out.Segments[n-1].Type == SegmentTypeASSequence {
			out.Segments[n-1].ASNs = append(out.Segments[n-1].ASNs, seg.ASNs...)
			continue
		}
		out.Segments = append(out.Segments, PathSegment{Type: seg.Type, ASNs: append([]uint32{}, seg.ASNs...)})
	}
	return out
}

// decodeASPath parses AS_PATH segments with the given ASN width (2 or
// 4 octets) into a freshly allocated path.
func decodeASPath(buf []byte, asnBytes int) (ASPath, error) {
	var p ASPath
	if err := decodeASPathInto(buf, asnBytes, &p); err != nil {
		return ASPath{}, err
	}
	return p, nil
}

// decodeASPathInto parses AS_PATH segments into p, reusing p's segment
// slice and, slot by slot, the ASN arrays of whatever path p held
// before. On error p's contents are unspecified.
func decodeASPathInto(buf []byte, asnBytes int, p *ASPath) error {
	segs := p.Segments[:0]
	for len(buf) > 0 {
		if len(buf) < 2 {
			return fmt.Errorf("bgp: truncated AS_PATH segment header")
		}
		segType, count := buf[0], int(buf[1])
		if segType != SegmentTypeASSet && segType != SegmentTypeASSequence {
			return fmt.Errorf("bgp: AS_PATH: bad segment type %d", segType)
		}
		need := 2 + asnBytes*count
		if len(buf) < need {
			return fmt.Errorf("bgp: AS_PATH segment: want %d bytes, have %d", need, len(buf))
		}
		// Merge wire-split sequences back together so Key() is canonical.
		merge := len(segs) > 0 && segType == SegmentTypeASSequence && segs[len(segs)-1].Type == SegmentTypeASSequence
		var asns []uint32
		if merge {
			asns = segs[len(segs)-1].ASNs
		} else if len(segs) < cap(segs) {
			// Reclaim the ASN array of the segment previously stored in
			// this slot.
			asns = segs[:len(segs)+1][len(segs)].ASNs[:0]
		}
		for i := 0; i < count; i++ {
			if asnBytes == 2 {
				asns = append(asns, uint32(binary.BigEndian.Uint16(buf[2+2*i:4+2*i])))
			} else {
				asns = append(asns, binary.BigEndian.Uint32(buf[2+4*i:6+4*i]))
			}
		}
		if merge {
			segs[len(segs)-1].ASNs = asns
		} else {
			segs = append(segs, PathSegment{Type: segType, ASNs: asns})
		}
		buf = buf[need:]
	}
	p.Segments = segs
	return nil
}

// Encode serializes the UPDATE, including the 19-octet BGP header with an
// all-ones marker. It fails if the message would exceed the RFC 4271
// 4096-octet limit.
func (m *UpdateMessage) Encode() ([]byte, error) {
	var withdrawn []byte
	for _, p := range m.Withdrawn {
		withdrawn = p.AppendWire(withdrawn)
	}
	attrs := m.Attrs.EncodeAttrs()
	var nlri []byte
	for _, p := range m.NLRI {
		nlri = p.AppendWire(nlri)
	}

	total := headerLen + 2 + len(withdrawn) + 2 + len(attrs) + len(nlri)
	if total > maxMessageLen {
		return nil, fmt.Errorf("bgp: UPDATE would be %d bytes, exceeding the %d-byte limit", total, maxMessageLen)
	}
	out := make([]byte, 0, total)
	for i := 0; i < 16; i++ {
		out = append(out, 0xff)
	}
	out = binary.BigEndian.AppendUint16(out, uint16(total))
	out = append(out, MsgTypeUpdate)
	out = binary.BigEndian.AppendUint16(out, uint16(len(withdrawn)))
	out = append(out, withdrawn...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(attrs)))
	out = append(out, attrs...)
	out = append(out, nlri...)
	return out, nil
}

// DecodeUpdate parses a full BGP message (header included) into an
// UPDATE with 4-octet AS_PATH encoding (RFC 6793 speakers, and all
// BGP4MP_MESSAGE_AS4 records). It returns an error for non-UPDATE
// messages or malformed bodies.
func DecodeUpdate(buf []byte) (*UpdateMessage, error) {
	return DecodeUpdateSized(buf, 4)
}

// DecodeUpdateSized parses an UPDATE with an explicit AS_PATH ASN width:
// 2 for messages from pre-RFC 6793 sessions (plain BGP4MP_MESSAGE
// records), in which case any AS4_PATH attribute is merged.
func DecodeUpdateSized(buf []byte, asnBytes int) (*UpdateMessage, error) {
	var m UpdateMessage
	if err := DecodeUpdateSizedInto(buf, asnBytes, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// DecodeUpdateSizedInto is DecodeUpdateSized decoding into a
// caller-owned message: m's previous contents are discarded, but its
// slice capacity (withdrawn/NLRI lists, attribute storage) is reused,
// so a scan loop recycling one UpdateMessage runs allocation-free at
// steady state. On error m's contents are unspecified.
func DecodeUpdateSizedInto(buf []byte, asnBytes int, m *UpdateMessage) error {
	if asnBytes != 2 && asnBytes != 4 {
		return fmt.Errorf("bgp: unsupported ASN width %d", asnBytes)
	}
	if len(buf) < headerLen {
		return fmt.Errorf("bgp: message shorter than header: %d bytes", len(buf))
	}
	for i := 0; i < 16; i++ {
		if buf[i] != 0xff {
			return fmt.Errorf("bgp: bad marker octet at %d", i)
		}
	}
	total := int(binary.BigEndian.Uint16(buf[16:18]))
	if total < headerLen || total > maxMessageLen {
		return fmt.Errorf("bgp: bad message length %d", total)
	}
	if len(buf) < total {
		return fmt.Errorf("bgp: truncated message: header says %d, have %d", total, len(buf))
	}
	if buf[18] != MsgTypeUpdate {
		return fmt.Errorf("bgp: message type %d is not UPDATE", buf[18])
	}
	body := buf[headerLen:total]

	m.Withdrawn = m.Withdrawn[:0]
	m.NLRI = m.NLRI[:0]
	m.Attrs.ResetForReuse()

	if len(body) < 2 {
		return fmt.Errorf("bgp: UPDATE body too short for withdrawn length")
	}
	wlen := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	if len(body) < wlen {
		return fmt.Errorf("bgp: withdrawn routes: want %d bytes, have %d", wlen, len(body))
	}
	wbuf := body[:wlen]
	body = body[wlen:]
	for len(wbuf) > 0 {
		p, n, err := DecodePrefixIPv4(wbuf)
		if err != nil {
			return err
		}
		m.Withdrawn = append(m.Withdrawn, p)
		wbuf = wbuf[n:]
	}

	if len(body) < 2 {
		return fmt.Errorf("bgp: UPDATE body too short for attribute length")
	}
	alen := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	if len(body) < alen {
		return fmt.Errorf("bgp: path attributes: want %d bytes, have %d", alen, len(body))
	}
	if err := decodeAttrsSized(body[:alen], &m.Attrs, asnBytes); err != nil {
		return err
	}
	body = body[alen:]

	for len(body) > 0 {
		p, n, err := DecodePrefixIPv4(body)
		if err != nil {
			return err
		}
		m.NLRI = append(m.NLRI, p)
		body = body[n:]
	}
	return nil
}

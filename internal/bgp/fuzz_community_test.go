package bgp

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzParseCommunities exercises the mixed classic/large parser: any
// accepted input must round-trip exactly through the String renderings
// of the two community kinds, and no input may panic.
func FuzzParseCommunities(f *testing.F) {
	f.Add("")
	f.Add("2914:3075 2914:420")
	f.Add("2914:3075,64500:1:228\t57866:100:1")
	f.Add("4294967295:4294967295:4294967295")
	f.Add("65535:65535")
	f.Add("0:0 0:0:0")
	f.Add("1:2:3:4")
	f.Add("-1:2")
	f.Fuzz(func(t *testing.T, s string) {
		comms, larges, err := ParseCommunities(s)
		if err != nil {
			return
		}
		// Re-render and re-parse: the canonical notation must be a fixed
		// point of the parser for both kinds.
		var b bytes.Buffer
		b.WriteString(comms.String())
		if len(larges) > 0 {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(larges.String())
		}
		comms2, larges2, err := ParseCommunities(b.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", b.String(), s, err)
		}
		if len(comms2) != len(comms) || len(larges2) != len(larges) {
			t.Fatalf("round-trip of %q changed counts: (%d,%d) -> (%d,%d)",
				s, len(comms), len(larges), len(comms2), len(larges2))
		}
		for i := range comms {
			if comms[i] != comms2[i] {
				t.Fatalf("round-trip of %q: classic[%d] %v -> %v", s, i, comms[i], comms2[i])
			}
		}
		for i := range larges {
			if larges[i] != larges2[i] {
				t.Fatalf("round-trip of %q: large[%d] %v -> %v", s, i, larges[i], larges2[i])
			}
		}
	})
}

// FuzzDecodeLargeCommunities frames arbitrary bytes as a
// LARGE_COMMUNITIES path attribute and drives the attribute decoder:
// decode must never panic, must reject payloads that are not a multiple
// of 12 bytes, and every accepted payload must survive an
// encode/decode round trip bit-exactly.
func FuzzDecodeLargeCommunities(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 2, 0, 0, 0, 3})
	f.Add(bytes.Repeat([]byte{0xff}, 24))
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) > 0xffff {
			payload = payload[:0xffff]
		}
		attr := []byte{0xd0 /* optional|transitive|extended length */, AttrLargeCommunities}
		attr = binary.BigEndian.AppendUint16(attr, uint16(len(payload)))
		attr = append(attr, payload...)

		var a PathAttributes
		err := DecodeAttrs(attr, &a)
		if len(payload)%12 != 0 {
			if err == nil {
				t.Fatalf("decoder accepted %d-byte LARGE_COMMUNITIES payload", len(payload))
			}
			return
		}
		if err != nil {
			t.Fatalf("decoder rejected well-formed %d-byte payload: %v", len(payload), err)
		}
		if got, want := len(a.LargeCommunities), len(payload)/12; got != want {
			t.Fatalf("decoded %d large communities from %d bytes, want %d", got, len(payload), want)
		}
		if len(a.LargeCommunities) == 0 {
			return
		}
		// Wire round trip: re-encoding the decoded attribute must
		// reproduce the payload bytes exactly.
		reenc := (&PathAttributes{LargeCommunities: a.LargeCommunities}).EncodeAttrs()
		var b PathAttributes
		if err := DecodeAttrs(reenc, &b); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if len(b.LargeCommunities) != len(a.LargeCommunities) {
			t.Fatalf("re-decode count %d != %d", len(b.LargeCommunities), len(a.LargeCommunities))
		}
		for i := range a.LargeCommunities {
			if a.LargeCommunities[i] != b.LargeCommunities[i] {
				t.Fatalf("re-decode[%d]: %v != %v", i, b.LargeCommunities[i], a.LargeCommunities[i])
			}
			// And the text notation round-trips too.
			lc, err := ParseLargeCommunity(a.LargeCommunities[i].String())
			if err != nil || lc != a.LargeCommunities[i] {
				t.Fatalf("String round-trip of %v: %v, %v", a.LargeCommunities[i], lc, err)
			}
		}
	})
}

// Package bgp implements the subset of the Border Gateway Protocol (BGP-4,
// RFC 4271) wire formats needed to study BGP communities: the communities
// attributes themselves (regular, RFC 1997; extended, RFC 5668; large,
// RFC 8092), AS paths, NLRI prefixes, and UPDATE message encoding and
// decoding. It is a from-scratch implementation with no dependencies
// outside the standard library.
package bgp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Community is a regular 32-bit BGP community (RFC 1997) of the form α:β,
// where the high 16 bits (α) identify the AS that assigns meaning to the
// low 16 bits (β).
type Community uint32

// NewCommunity assembles a regular community from its α (ASN) and β (value)
// halves.
func NewCommunity(asn, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// ASN returns the α half: the 16-bit AS number that defines the meaning of
// the community.
func (c Community) ASN() uint16 { return uint16(c >> 16) }

// Value returns the β half: the 16-bit operator-assigned value.
func (c Community) Value() uint16 { return uint16(c & 0xffff) }

// String renders the community in canonical α:β notation.
func (c Community) String() string {
	return strconv.Itoa(int(c.ASN())) + ":" + strconv.Itoa(int(c.Value()))
}

// Well-known communities registered with IANA. Values in the 0xFFFF0000 -
// 0xFFFFFFFF range are reserved and have protocol-defined semantics.
const (
	// CommunityGracefulShutdown (RFC 8326) requests depreferencing
	// before maintenance.
	CommunityGracefulShutdown Community = 0xFFFF0000
	// CommunityBlackhole (RFC 7999) requests that traffic to the prefix
	// be discarded.
	CommunityBlackhole Community = 0xFFFF029A
	// CommunityNoExport (RFC 1997) prevents advertisement outside the AS
	// (or confederation).
	CommunityNoExport Community = 0xFFFFFF01
	// CommunityNoAdvertise (RFC 1997) prevents advertisement to any peer.
	CommunityNoAdvertise Community = 0xFFFFFF02
	// CommunityNoExportSubconfed (RFC 1997) prevents advertisement to
	// external peers, including confederation members.
	CommunityNoExportSubconfed Community = 0xFFFFFF03
	// CommunityNoPeer (RFC 3765) requests that the route not be
	// advertised across bilateral peering.
	CommunityNoPeer Community = 0xFFFFFF04
)

// IsWellKnown reports whether the community falls in the IANA reserved
// ranges (0x00000000-0x0000FFFF and 0xFFFF0000-0xFFFFFFFF) rather than
// carrying an operator-assigned ASN in its top half.
func (c Community) IsWellKnown() bool {
	asn := c.ASN()
	return asn == 0x0000 || asn == 0xFFFF
}

// privateASNMin16/Max16 bound the IANA 16-bit private-use AS range
// (RFC 6996).
const (
	privateASNMin16 = 64512
	privateASNMax16 = 65534
)

// IsPrivateASN reports whether the α half of the community lies in the
// 16-bit private-use ASN range (64512-65534, RFC 6996) or is the
// reserved 65535. The inference method does not classify such
// communities because the assigning network cannot be identified.
func (c Community) IsPrivateASN() bool {
	return c.ASN() >= privateASNMin16
}

// ParseCommunity parses canonical α:β notation, e.g. "1299:2569".
func ParseCommunity(s string) (Community, error) {
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return 0, fmt.Errorf("bgp: community %q: missing ':'", s)
	}
	asn, err := strconv.ParseUint(s[:i], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: community %q: bad ASN: %v", s, err)
	}
	val, err := strconv.ParseUint(s[i+1:], 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: community %q: bad value: %v", s, err)
	}
	return NewCommunity(uint16(asn), uint16(val)), nil
}

// ParseCommunities parses a mixed list of communities, separated by
// spaces and/or commas — the forms looking glasses, bgpdump output,
// and route policies use, e.g. "2914:3075 2914:420" or
// "2914:3075,64500:1:228". Two-part α:β tokens parse as classic
// RFC 1997 communities, three-part asn:fn:value tokens as RFC 8092
// large communities; each form round-trips exactly through its
// String rendering. An empty string parses to empty sets.
func ParseCommunities(s string) (Communities, LargeCommunities, error) {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == ',' || r == '\t'
	})
	if len(fields) == 0 {
		return nil, nil, nil
	}
	var (
		out Communities
		lout LargeCommunities
	)
	for _, f := range fields {
		if strings.Count(f, ":") == 2 {
			lc, err := ParseLargeCommunity(f)
			if err != nil {
				return nil, nil, err
			}
			lout = append(lout, lc)
			continue
		}
		c, err := ParseCommunity(f)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, c)
	}
	return out, lout, nil
}

// Communities is a set of regular communities carried by one route.
// The zero value is an empty, usable set.
type Communities []Community

// Has reports whether c is present in the set.
func (cs Communities) Has(c Community) bool {
	for _, x := range cs {
		if x == c {
			return true
		}
	}
	return false
}

// Clone returns an independent copy of the set.
func (cs Communities) Clone() Communities {
	if cs == nil {
		return nil
	}
	out := make(Communities, len(cs))
	copy(out, cs)
	return out
}

// Sort orders the set numerically (by α, then β), in place.
func (cs Communities) Sort() {
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
}

// Canonical returns a sorted, de-duplicated copy of the set. Routes that
// carry the same communities in different orders compare equal through
// their canonical form.
func (cs Communities) Canonical() Communities {
	if len(cs) == 0 {
		return nil
	}
	out := cs.Clone()
	out.Sort()
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// String renders the set as space-separated α:β pairs, the convention used
// by looking glasses and bgpdump.
func (cs Communities) String() string {
	var b strings.Builder
	for i, c := range cs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(c.String())
	}
	return b.String()
}

// LargeCommunity is a 96-bit large BGP community (RFC 8092) of the form
// α:β:γ where α is a 32-bit global administrator ASN.
type LargeCommunity struct {
	GlobalAdmin uint32 // the ASN defining the meaning of the data parts
	LocalData1  uint32 // β
	LocalData2  uint32 // γ
}

// String renders the large community in canonical α:β:γ notation.
func (lc LargeCommunity) String() string {
	return fmt.Sprintf("%d:%d:%d", lc.GlobalAdmin, lc.LocalData1, lc.LocalData2)
}

// Compare orders large communities numerically by (GlobalAdmin,
// LocalData1, LocalData2): negative, zero or positive as lc sorts
// before, equal to, or after o.
func (lc LargeCommunity) Compare(o LargeCommunity) int {
	switch {
	case lc.GlobalAdmin != o.GlobalAdmin:
		if lc.GlobalAdmin < o.GlobalAdmin {
			return -1
		}
		return 1
	case lc.LocalData1 != o.LocalData1:
		if lc.LocalData1 < o.LocalData1 {
			return -1
		}
		return 1
	case lc.LocalData2 != o.LocalData2:
		if lc.LocalData2 < o.LocalData2 {
			return -1
		}
		return 1
	}
	return 0
}

// privateASNMin32/Max bound the IANA 32-bit private-use AS range
// (RFC 6996).
const (
	privateASNMin32 uint32 = 4200000000
)

// IsPrivateASN32 reports whether a 32-bit AS number lies in a
// private-use range (64512-65534 per RFC 6996, 4200000000-4294967294
// per RFC 6996) or is one of the reserved values 65535 and 4294967295
// (RFC 7300). The inference method does not classify communities whose
// administrator ASN cannot identify a network.
func IsPrivateASN32(asn uint32) bool {
	return (asn >= privateASNMin16 && asn <= 65535) || asn >= privateASNMin32
}

// IsPrivateASN reports whether the large community's global
// administrator lies in a private-use or reserved AS range, the
// 32-bit analogue of Community.IsPrivateASN.
func (lc LargeCommunity) IsPrivateASN() bool {
	return IsPrivateASN32(lc.GlobalAdmin)
}

// ParseLargeCommunity parses canonical α:β:γ notation, e.g.
// "57866:100:1".
func ParseLargeCommunity(s string) (LargeCommunity, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return LargeCommunity{}, fmt.Errorf("bgp: large community %q: want 3 parts, have %d", s, len(parts))
	}
	var vals [3]uint32
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return LargeCommunity{}, fmt.Errorf("bgp: large community %q: part %d: %v", s, i+1, err)
		}
		vals[i] = uint32(v)
	}
	return LargeCommunity{vals[0], vals[1], vals[2]}, nil
}

// LargeCommunities is a set of large communities carried by one route.
type LargeCommunities []LargeCommunity

// Clone returns an independent copy of the set.
func (ls LargeCommunities) Clone() LargeCommunities {
	if ls == nil {
		return nil
	}
	out := make(LargeCommunities, len(ls))
	copy(out, ls)
	return out
}

// Sort orders the set numerically, in place.
func (ls LargeCommunities) Sort() {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Compare(ls[j]) < 0 })
}

// Canonical returns a sorted, de-duplicated copy of the set, the
// identity under which routes carrying the same large communities in
// different orders compare equal.
func (ls LargeCommunities) Canonical() LargeCommunities {
	if len(ls) == 0 {
		return nil
	}
	out := ls.Clone()
	out.Sort()
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// String renders the set as space-separated α:β:γ triples.
func (ls LargeCommunities) String() string {
	var b strings.Builder
	for i, lc := range ls {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(lc.String())
	}
	return b.String()
}

// ExtendedCommunity is an 8-octet extended community (RFC 4360). Only the
// 4-octet AS-specific form (RFC 5668) is interpreted; other forms are
// carried opaquely.
type ExtendedCommunity struct {
	Type    uint8  // high-order type octet
	SubType uint8  // low-order type octet
	Global  uint32 // global administrator (4-octet ASN for RFC 5668 forms)
	Local   uint16 // local administrator
}

// ExtendedCommunity type octets for the 4-octet AS-specific forms
// (RFC 5668).
const (
	ExtCommTypeTransitive4ByteAS    = 0x02
	ExtCommTypeNonTransitive4ByteAS = 0x42
)

// IsFourOctetAS reports whether the extended community is one of the
// RFC 5668 4-octet AS-specific forms, in which Global carries a 32-bit ASN.
func (ec ExtendedCommunity) IsFourOctetAS() bool {
	return ec.Type == ExtCommTypeTransitive4ByteAS || ec.Type == ExtCommTypeNonTransitive4ByteAS
}

// String renders an RFC 5668 community as asn4:local; other forms render
// with their type and raw value for debugging.
func (ec ExtendedCommunity) String() string {
	if ec.IsFourOctetAS() {
		return fmt.Sprintf("%d:%d", ec.Global, ec.Local)
	}
	return fmt.Sprintf("ext(0x%02x:0x%02x):%d:%d", ec.Type, ec.SubType, ec.Global, ec.Local)
}

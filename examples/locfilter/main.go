// Locfilter reproduces the paper's Table 1 scenario as an application:
// a location-community inference (after Da Silva et al., SIGMETRICS'22)
// produces false positives on traffic-engineering action communities,
// and filtering with the coarse-grained intent classification removes
// them, raising precision.
//
//	go run ./examples/locfilter
package main

import (
	"context"
	"fmt"
	"log"

	"bgpintent"
)

func main() {
	log.SetFlags(0)

	fmt.Println("building synthetic corpus...")
	corpus, err := bgpintent.NewSyntheticCorpus(bgpintent.CorpusOptions{Small: true, Days: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: the prior art — infer location communities in isolation.
	locs, err := corpus.InferLocations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("location method inferred %d location communities\n", len(locs))

	// Step 2: classify intent and drop location inferences that are
	// really action communities.
	result, err := corpus.ClassifyContext(context.Background(), bgpintent.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	kept, dropped := result.FilterActions(locs)
	fmt.Printf("intent filter kept %d, dropped %d action communities\n\n", len(kept), len(dropped))

	// Score both sets against ground truth, Table 1 style.
	score := func(name string, ls []bgpintent.LocationInference) {
		var geo, te, other int
		for _, l := range ls {
			sub, err := corpus.GroundTruthSub(l.Community)
			if err != nil {
				log.Fatal(err)
			}
			truth, _ := corpus.GroundTruth(l.Community)
			switch {
			case sub == "location":
				geo++
			case truth == bgpintent.Action:
				te++
			default:
				other++
			}
		}
		precision := 0.0
		if len(ls) > 0 {
			precision = float64(geo) / float64(len(ls))
		}
		fmt.Printf("%-8s geolocation=%-4d traffic-engineering=%-4d other=%-4d precision=%.1f%%\n",
			name, geo, te, other, 100*precision)
	}
	score("before", locs)
	score("after", kept)
	fmt.Println("\npaper's Table 1: precision 68.2% -> 94.8%, TE false positives 206 -> 12")

	if len(dropped) > 0 {
		fmt.Println("\nexamples of dropped traffic-engineering communities:")
		for i, l := range dropped {
			fmt.Printf("  %s\n", corpus.Describe(l.Community, result))
			if i >= 4 {
				break
			}
		}
	}
}

// Anomaly shows the monitoring use case from the paper's introduction:
// knowing which communities are informational lets an operator flag a
// route as anomalous when its expected information communities suddenly
// disappear (a symptom of path hijacks, route leaks through
// community-stripping networks, or policy mistakes).
//
// The example learns, per transit AS, how reliably it tags information
// communities on routes through it; then it inspects a fresh day of
// routes — with some tampered to have their communities stripped — and
// flags the ones missing expected tags.
//
//	go run ./examples/anomaly
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"bgpintent"
)

func main() {
	log.SetFlags(0)

	fmt.Println("building baseline corpus...")
	corpus, err := bgpintent.NewSyntheticCorpus(bgpintent.CorpusOptions{Small: true, Days: 2})
	if err != nil {
		log.Fatal(err)
	}
	result, err := corpus.ClassifyContext(context.Background(), bgpintent.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	// Learn tagging behavior from the baseline: for each AS, the share
	// of baseline routes through it that carry at least one of its
	// information communities.
	baseline, err := corpus.SimulateDay(0)
	if err != nil {
		log.Fatal(err)
	}
	through := make(map[uint32]int) // AS -> routes through it
	tagged := make(map[uint32]int)  // AS -> routes with an info community of its own
	for _, rv := range baseline {
		infoBy := make(map[uint16]bool)
		for _, comm := range rv.Communities {
			if result.Category(comm) == bgpintent.Information {
				infoBy[comm.ASN] = true
			}
		}
		for _, asn := range rv.Path {
			if asn > 0xffff {
				continue
			}
			through[asn]++
			if infoBy[uint16(asn)] {
				tagged[asn]++
			}
		}
	}
	reliable := make(map[uint32]bool)
	for asn, n := range through {
		if n >= 50 && float64(tagged[asn])/float64(n) >= 0.9 {
			reliable[asn] = true
		}
	}
	fmt.Printf("baseline: %d routes; %d ASes reliably tag information communities\n",
		len(baseline), len(reliable))

	// A fresh day of routes, with 1% tampered: communities stripped, as a
	// leak through a community-filtering network would look.
	today, err := corpus.SimulateDay(3)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	tampered := make(map[int]bool)
	for i := range today {
		if len(today[i].Communities) > 0 && rng.Float64() < 0.01 {
			today[i].Communities = nil
			tampered[i] = true
		}
	}

	// Flag routes through reliable taggers that carry none of their
	// information communities.
	flagged := make(map[int]bool)
	for i, rv := range today {
		infoBy := make(map[uint16]bool)
		for _, comm := range rv.Communities {
			if result.Category(comm) == bgpintent.Information {
				infoBy[comm.ASN] = true
			}
		}
		for _, asn := range rv.Path[1:] { // skip the VP itself
			if asn <= 0xffff && reliable[asn] && !infoBy[uint16(asn)] {
				flagged[i] = true
				break
			}
		}
	}

	// Score the detector.
	var truePos, falsePos, falseNeg int
	for i := range today {
		switch {
		case tampered[i] && flagged[i]:
			truePos++
		case !tampered[i] && flagged[i]:
			falsePos++
		case tampered[i] && !flagged[i]:
			falseNeg++
		}
	}
	fmt.Printf("tampered routes: %d; flagged: %d\n", len(tampered), len(flagged))
	fmt.Printf("detection: %d true positives, %d false positives, %d missed\n",
		truePos, falsePos, falseNeg)
	if truePos+falseNeg > 0 {
		fmt.Printf("recall %.1f%%", 100*float64(truePos)/float64(truePos+falseNeg))
		if truePos+falsePos > 0 {
			fmt.Printf(", precision %.1f%%", 100*float64(truePos)/float64(truePos+falsePos))
		}
		fmt.Println()
	}
	fmt.Println("\nwithout the action/information split, every community would look alike and")
	fmt.Println("routes that legitimately carry only action communities would drown the signal.")
}

// Anomaly shows the monitoring use case from the paper's introduction:
// knowing which communities are action and which are informational
// turns a raw update stream into a signal an operator can alarm on —
// a blackhole community suddenly bursting, a transit AS's reliable
// information tags disappearing (a symptom of route leaks through
// community-stripping networks), traffic-engineering flapping.
//
// The heavy lifting lives in internal/anomaly (the CommunityWatch
// engine intentd -live serves at /v1/anomalies); this example is a
// thin driver: it scripts three ground-truth events into the
// simulated feed, replays the stream through the engine with the
// inferred semantics, and scores what the detectors found. Unlike
// the early version of this example, the engine handles the full
// 32-bit ASN space — 4-byte ASes on paths are counted rather than
// skipped, and can never be misattributed via 16-bit truncation.
//
//	go run ./examples/anomaly
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"sort"
	"time"

	"bgpintent/internal/anomaly"
	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/dict"
	"bgpintent/internal/simulate"
	"bgpintent/internal/stream"
	"bgpintent/internal/topology"
)

func main() {
	log.SetFlags(0)

	topo, err := topology.Generate(topology.TinyConfig())
	if err != nil {
		log.Fatal(err)
	}
	newFeed := func(sc *simulate.Script) stream.Source {
		return stream.NewSimSource(simulate.New(topo, simulate.TinyConfig()), stream.SimConfig{
			Days:   2,
			Epoch:  stream.DefaultEpoch.Truncate(time.Hour),
			Script: sc,
		})
	}

	fmt.Println("draining a clean baseline feed and classifying it...")
	clean := drain(newFeed(nil))
	ts := core.NewTupleStore()
	for _, u := range clean {
		ts.AddView(u.VP, u.Path, u.Comms)
	}
	sem := core.Classify(ts, core.DefaultOptions())
	action, info := sem.Counts()
	fmt.Printf("baseline: %d updates, %d action / %d information communities\n",
		len(clean), action, info)

	// Pick event subjects from the inference itself: two quiet action
	// communities and the busiest reliable information tagger.
	spikeC, flapC := quietActions(clean, sem)
	stripAS := reliableTagger(clean, sem)
	script := fmt.Sprintf("spike:%d:%d@25h+2h#400;strip:%d@30h+3h;flap:%d:%d@35h+8h#4x200",
		spikeC.ASN(), spikeC.Value(), stripAS, flapC.ASN(), flapC.Value())
	fmt.Printf("scripting ground truth: %s\n\n", script)

	sc, err := simulate.ParseScript(script)
	if err != nil {
		log.Fatal(err)
	}
	eng := anomaly.NewEngine(anomaly.Options{
		BucketSpan: time.Hour,
		History:    24,
		Detectors: anomaly.DefaultDetectors(anomaly.Thresholds{
			ReliableMin: 100, MissMin: 10, // scaled to the tiny corpus
		}),
	})
	eng.SetSemantics(sem)
	for _, u := range drain(newFeed(sc)) {
		eng.Process(u)
	}
	eng.CloseUpTo(stream.DefaultEpoch.Add(49 * time.Hour))

	rep := eng.Query(anomaly.Query{})
	fmt.Printf("findings (%d):\n", len(rep.Findings))
	for _, f := range rep.Findings {
		fmt.Printf("  %-7s %s\n", f.Detector, f.Summary)
	}

	detected := func(kind string, match func(anomaly.Finding) bool) string {
		for _, f := range rep.Findings {
			if f.Kind == kind && match(f) {
				return "detected"
			}
		}
		return "MISSED"
	}
	fmt.Println("\nscorecard:")
	fmt.Printf("  spike on %s: %s\n", spikeC, detected("spike-onset",
		func(f anomaly.Finding) bool { return f.Community == spikeC }))
	fmt.Printf("  strip through AS%d: %s\n", stripAS, detected("info-disappearance",
		func(f anomaly.Finding) bool { return f.ASN == stripAS }))
	fmt.Printf("  flap on %s: %s\n", flapC, detected("churn",
		func(f anomaly.Finding) bool { return f.Community == flapC }))

	fmt.Println("\nwithout the action/information split, every community would look alike:")
	fmt.Println("bursts of routine tags would drown the blackhole signal, and stripped")
	fmt.Println("information communities would not be missed at all.")
}

func drain(src stream.Source) []stream.Update {
	sess, err := src.Connect(context.Background(), 0)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	var out []stream.Update
	for {
		u, err := sess.Recv(context.Background())
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, u)
	}
}

// quietActions returns the two least-frequent action communities —
// quiet baselines make the cleanest spike and flap subjects.
func quietActions(updates []stream.Update, sem core.InferenceSource) (bgp.Community, bgp.Community) {
	freq := make(map[bgp.Community]int)
	for _, u := range updates {
		for _, c := range u.Comms {
			freq[c]++
		}
	}
	var actions []bgp.Community
	sem.EachLabeled(func(c bgp.Community, cat dict.Category) bool {
		if cat == dict.CatAction {
			actions = append(actions, c)
		}
		return true
	})
	if len(actions) < 2 {
		log.Fatal("corpus classified fewer than two action communities")
	}
	sort.Slice(actions, func(i, j int) bool {
		if freq[actions[i]] != freq[actions[j]] {
			return freq[actions[i]] < freq[actions[j]]
		}
		return actions[i] < actions[j]
	})
	return actions[0], actions[1]
}

// reliableTagger returns the on-path AS with the most routes through it
// among those whose routes nearly always carry one of its own
// information communities. The full 32-bit ASN space is scanned; a
// 4-byte AS simply can never qualify, because a classic community's α
// field cannot name it.
func reliableTagger(updates []stream.Update, sem core.InferenceSource) uint32 {
	through := make(map[uint32]int)
	tagged := make(map[uint32]int)
	for _, u := range updates {
		for i := 1; i < len(u.Path); i++ {
			asn := u.Path[i]
			dup := false
			for j := 1; j < i; j++ {
				if u.Path[j] == asn {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			through[asn]++
			if asn > 0xffff {
				continue // counted, but unable to own a classic community
			}
			for _, c := range u.Comms {
				if uint32(c.ASN()) == asn && sem.Category(c) == dict.CatInformation {
					tagged[asn]++
					break
				}
			}
		}
	}
	best, bestN := uint32(0), 0
	for asn, n := range through {
		if n >= 50 && float64(tagged[asn])/float64(n) >= 0.9 &&
			(n > bestN || (n == bestN && asn < best)) {
			best, bestN = asn, n
		}
	}
	if best == 0 {
		log.Fatal("no reliable tagging AS in the baseline")
	}
	return best
}

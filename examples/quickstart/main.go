// Quickstart: build a synthetic BGP corpus, classify every observed
// community as action or information, and inspect a few inferences
// against the generator's ground truth.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"bgpintent"
)

func main() {
	log.SetFlags(0)

	// A small synthetic Internet: ~170 ASes, two days of data from 40
	// vantage points. Drop Small for the paper-scale corpus.
	fmt.Println("building synthetic corpus...")
	corpus, err := bgpintent.NewSyntheticCorpus(bgpintent.CorpusOptions{Small: true, Days: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d unique (path, communities) tuples over %d AS paths, %d vantage points\n",
		corpus.Tuples(), corpus.Paths(), len(corpus.VantagePoints()))

	// Classify with the paper's parameters: cluster each AS's community
	// values with a minimum gap of 140, then label clusters by their
	// on-path:off-path ratio (threshold 160:1).
	result, err := corpus.ClassifyContext(context.Background(), bgpintent.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	action, information := result.Counts()
	fmt.Printf("classified %d communities: %d action, %d information\n\n",
		action+information, action, information)

	// Inspect a handful of inferences against ground truth.
	fmt.Println("sample inferences (inferred vs generator ground truth):")
	shown := 0
	for _, lc := range result.Labeled() {
		truth, err := corpus.GroundTruth(lc.Community)
		if err != nil {
			log.Fatal(err)
		}
		if truth == bgpintent.Unknown {
			continue // undocumented in the synthetic "operator docs"
		}
		mark := "ok"
		if truth != lc.Category {
			mark = "MISCLASSIFIED"
		}
		sub, _ := corpus.GroundTruthSub(lc.Community)
		fmt.Printf("  %-12s inferred=%-12s truth=%s/%-14s %s\n",
			lc.Community, lc.Category, truth, sub, mark)
		if shown++; shown >= 12 {
			break
		}
	}

	// Score everything that has ground truth.
	correct, total := 0, 0
	for _, lc := range result.Labeled() {
		truth, _ := corpus.GroundTruth(lc.Community)
		if truth == bgpintent.Unknown {
			continue
		}
		total++
		if truth == lc.Category {
			correct++
		}
	}
	fmt.Printf("\naccuracy over %d ground-truth communities: %.1f%% (paper: 96.5%%)\n",
		total, 100*float64(correct)/float64(total))
}

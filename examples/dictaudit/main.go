// Dictaudit shows the "central repository of community meanings" use
// case from the paper's §3: operator documentation (the ground-truth
// dictionary) covers only part of what is visible in BGP, and the
// inference fills the coarse-grained gap for the rest — the first step
// toward automatically maintained community dictionaries.
//
//	go run ./examples/dictaudit
package main

import (
	"context"
	"fmt"
	"log"
	"regexp"
	"strconv"
	"strings"

	"bgpintent"
)

func main() {
	log.SetFlags(0)

	fmt.Println("building synthetic corpus...")
	corpus, err := bgpintent.NewSyntheticCorpus(bgpintent.CorpusOptions{Small: true, Days: 2})
	if err != nil {
		log.Fatal(err)
	}

	// The "documentation": range regexes per AS, as collected from
	// NLNOG/IRR/operator pages.
	tsv, err := corpus.DictionaryTSV()
	if err != nil {
		log.Fatal(err)
	}
	type rule struct {
		asn uint16
		re  *regexp.Regexp
	}
	var rules []rule
	for _, line := range strings.Split(strings.TrimSpace(tsv), "\n") {
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			continue
		}
		asn, err := strconv.ParseUint(parts[0], 10, 16)
		if err != nil {
			continue
		}
		rules = append(rules, rule{asn: uint16(asn), re: regexp.MustCompile(parts[2])})
	}
	documented := func(c bgpintent.Community) bool {
		s := strconv.Itoa(int(c.Value))
		for _, r := range rules {
			if r.asn == c.ASN && r.re.MatchString(s) {
				return true
			}
		}
		return false
	}

	result, err := corpus.ClassifyContext(context.Background(), bgpintent.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}

	var docCount, inferredOnly, neither int
	byCat := map[bgpintent.Category]int{}
	for _, comm := range corpus.Communities() {
		doc := documented(comm)
		cat := result.Category(comm)
		switch {
		case doc:
			docCount++
		case cat != bgpintent.Unknown:
			inferredOnly++
			byCat[cat]++
		default:
			neither++
		}
	}
	total := docCount + inferredOnly + neither
	fmt.Printf("\nobserved communities: %d\n", total)
	fmt.Printf("  documented by operators:         %4d (%.1f%%)\n", docCount, pct(docCount, total))
	fmt.Printf("  undocumented, intent inferred:   %4d (%.1f%%) — action=%d information=%d\n",
		inferredOnly, pct(inferredOnly, total), byCat[bgpintent.Action], byCat[bgpintent.Information])
	fmt.Printf("  undocumented and unclassifiable: %4d (%.1f%%)\n", neither, pct(neither, total))
	fmt.Println("\nthe paper observed 78,480 undocumented communities across 5,491 ASNs in May")
	fmt.Println("2023, against documentation for only 59 ASes — this inference is the first")
	fmt.Println("automated step toward covering the rest.")
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

module bgpintent

go 1.22

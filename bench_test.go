package bgpintent

// The benchmark harness: one benchmark per paper table/figure (see the
// per-experiment index in DESIGN.md §4), plus micro-benchmarks of the
// substrates. Experiment benches run on a shared corpus built once; its
// scale is the default benchmark corpus with BGPINTENT_BENCH_DAYS days
// of data (default 2; the EXPERIMENTS.md numbers use cmd/evalrepro with
// the full 7).

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"bgpintent/internal/asrel"
	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/corpus"
	"bgpintent/internal/dict"
	"bgpintent/internal/eval"
	"bgpintent/internal/mrt"
	"bgpintent/internal/simulate"
	"bgpintent/internal/topology"
)

var (
	benchOnce sync.Once
	benchC    *corpus.Corpus
	benchErr  error
)

func benchCorpus(b *testing.B) *corpus.Corpus {
	b.Helper()
	benchOnce.Do(func() {
		cfg := corpus.DefaultConfig()
		cfg.Days = 2
		if v := os.Getenv("BGPINTENT_BENCH_DAYS"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				cfg.Days = n
			}
		}
		benchC, benchErr = corpus.Build(cfg)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchC
}

// reportMetric surfaces an experiment's key numbers in the benchmark
// output so paper-vs-measured comparisons fall out of `go test -bench`.
func reportMetrics(b *testing.B, r *eval.Report, keys ...string) {
	for _, k := range keys {
		if v, ok := r.Metrics[k]; ok {
			b.ReportMetric(v, k)
		}
	}
}

// BenchmarkHeadlineInference regenerates the §6 headline totals
// (DESIGN.md experiment `headline`).
func BenchmarkHeadlineInference(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		r := eval.Headline(c)
		if i == 0 {
			reportMetrics(b, r, "accuracy", "action", "information")
		}
	}
}

// BenchmarkFig4Clusters regenerates Figure 4 (experiment `fig4`).
func BenchmarkFig4Clusters(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		r := eval.Fig4(c)
		if i == 0 {
			reportMetrics(b, r, "ases")
		}
	}
}

// BenchmarkFig6RatioCDF regenerates Figure 6 (experiment `fig6`).
func BenchmarkFig6RatioCDF(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		r := eval.Fig6(c)
		if i == 0 {
			reportMetrics(b, r, "best_threshold", "best_accuracy", "accuracy_at_160")
		}
	}
}

// BenchmarkFig7CustPeerCDF regenerates Figure 7 (experiment `fig7`).
func BenchmarkFig7CustPeerCDF(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		r := eval.Fig7(c)
		if i == 0 {
			reportMetrics(b, r, "best_threshold", "best_accuracy")
		}
	}
}

// BenchmarkFig9GapSweep regenerates Figure 9 (experiment `fig9`).
func BenchmarkFig9GapSweep(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		r := eval.Fig9(c, nil)
		if i == 0 {
			reportMetrics(b, r, "accuracy_no_clustering", "accuracy_at_140", "best_gap")
		}
	}
}

// BenchmarkFig10VantagePoints regenerates Figure 10 (experiment
// `fig10`) with 10 trials per point (evalrepro runs the paper's 50).
func BenchmarkFig10VantagePoints(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		r := eval.Fig10(c, []int{1, 3, 8, 20, 40, 80, 160}, 10, 7)
		if i == 0 {
			reportMetrics(b, r, "accuracy_p50_at_20", "coverage_p50_at_20")
		}
	}
}

// BenchmarkTable1LocationFilter regenerates Table 1 (experiment `tab1`).
func BenchmarkTable1LocationFilter(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		r := eval.Table1(c)
		if i == 0 {
			reportMetrics(b, r, "precision_before", "precision_after", "te_before", "te_after")
		}
	}
}

// BenchmarkDaysSweep regenerates the §6 days-of-data analysis
// (experiment `days`) over 3 days (evalrepro runs 7).
func BenchmarkDaysSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := corpus.DefaultConfig()
		r, err := eval.DaysSweep(cfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportMetrics(b, r, "accuracy_day1", "accuracy_final")
		}
	}
}

// BenchmarkMonthsSweep regenerates the §6 longitudinal analysis
// (experiment `months`) over 3 months (evalrepro runs 12).
func BenchmarkMonthsSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := corpus.DefaultConfig()
		r, err := eval.MonthsSweep(cfg, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportMetrics(b, r, "min_accuracy", "max_accuracy", "growth")
		}
	}
}

// BenchmarkAblations runs the DESIGN.md §4 design-choice ablations.
func BenchmarkAblations(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		r := eval.Ablations(c)
		if i == 0 {
			reportMetrics(b, r, "accuracy_baseline", "accuracy_no_siblings")
		}
	}
}

// ---- substrate micro-benchmarks ----

// BenchmarkClassify measures one full classification pass over the
// corpus.
func BenchmarkClassify(b *testing.B) {
	c := benchCorpus(b)
	opts := c.Options()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Classify(c.Store, opts)
	}
}

// BenchmarkObserve measures the on/off-path counting pass alone.
func BenchmarkObserve(b *testing.B) {
	c := benchCorpus(b)
	opts := c.Options()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Observe(c.Store, opts)
	}
}

// BenchmarkVPSweepRun measures one VP-subset trial (the Fig. 10 inner
// loop).
func BenchmarkVPSweepRun(b *testing.B) {
	c := benchCorpus(b)
	sweep := core.NewVPSweep(c.Store, c.Options())
	vps := sweep.VPs()
	subset := vps[:len(vps)/4]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep.Run(subset)
	}
}

// BenchmarkSimulateDay measures one day of route propagation at
// benchmark scale.
func BenchmarkSimulateDay(b *testing.B) {
	topo, err := topology.Generate(topology.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	sim := simulate.New(topo, simulate.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunDay(i)
	}
}

// BenchmarkTupleStoreAdd measures tuple ingestion.
func BenchmarkTupleStoreAdd(b *testing.B) {
	topo, err := topology.Generate(topology.TinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	sim := simulate.New(topo, simulate.TinyConfig())
	day := sim.RunDay(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := core.NewTupleStore()
		for j := range day.Views {
			v := &day.Views[j]
			ts.AddView(v.VP, v.Path, v.Comms)
		}
	}
}

// ---- parallel pipeline benchmarks ----

var (
	benchMRTOnce  sync.Once
	benchMRTRibs  []string
	benchMRTError error
)

// writeBenchMRT writes a fresh default-scale corpus out as
// per-collector, per-day MRT RIB files under a temp dir and returns
// their paths. A fresh simulator (Days=0) is used so day replay starts
// from a clean state regardless of what benchCorpus already simulated.
// With matrix set, the simulator mirrors every origin-attached
// community as a large community (the std/lrg matrix), roughly
// doubling the community payload per view.
func writeBenchMRT(days int, matrix bool) ([]string, error) {
	cfg := corpus.DefaultConfig()
	cfg.Days = 0
	cfg.LargeMatrix = matrix
	c, err := corpus.Build(cfg)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "bgpintent-bench-mrt")
	if err != nil {
		return nil, err
	}
	var ribs []string
	const t0 = 1714521600
	for day := 0; day < days; day++ {
		res := c.Sim.RunDay(day)
		for col := 0; col < c.Sim.Collectors(); col++ {
			path := filepath.Join(dir, fmt.Sprintf("rc%02d.day%d.rib.mrt", col, day))
			f, err := os.Create(path)
			if err != nil {
				return nil, err
			}
			if err := c.Sim.WriteRIB(f, uint32(t0+day*86400), col, res); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			ribs = append(ribs, path)
		}
	}
	return ribs, nil
}

// benchDays returns the benchmark day count (BGPINTENT_BENCH_DAYS,
// default 2).
func benchDays() int {
	days := 2
	if v := os.Getenv("BGPINTENT_BENCH_DAYS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			days = n
		}
	}
	return days
}

// benchMRTFiles memoizes writeBenchMRT for the in-tree benchmarks.
func benchMRTFiles(b *testing.B) []string {
	b.Helper()
	benchMRTOnce.Do(func() {
		benchMRTRibs, benchMRTError = writeBenchMRT(benchDays(), false)
	})
	if benchMRTError != nil {
		b.Fatal(benchMRTError)
	}
	return benchMRTRibs
}

// BenchmarkLoadMRTParallel measures the fan-out MRT load (decode into
// the sharded store plus the deterministic merge) across worker counts.
func BenchmarkLoadMRTParallel(b *testing.B) {
	ribs := benchMRTFiles(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c, _, err := LoadMRTCorpusOptions(ribs, nil, "",
					LoadOptions{Parallelism: workers})
				if err != nil {
					b.Fatal(err)
				}
				if c.Tuples() == 0 {
					b.Fatal("empty corpus")
				}
			}
		})
	}
}

// BenchmarkObserveParallel measures the partitioned on/off-path
// counting pass across worker counts.
func BenchmarkObserveParallel(b *testing.B) {
	c := benchCorpus(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := c.Options()
			opts.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Observe(c.Store, opts)
			}
		})
	}
}

// BenchmarkClassifyParallel measures the full observe+cluster+label
// pipeline across worker counts.
func BenchmarkClassifyParallel(b *testing.B) {
	c := benchCorpus(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := c.Options()
			opts.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Classify(c.Store, opts)
			}
		})
	}
}

// BenchmarkGaoInfer measures AS-relationship inference over the corpus
// paths.
func BenchmarkGaoInfer(b *testing.B) {
	c := benchCorpus(b)
	paths := c.Store.AllPaths()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		asrel.Infer(paths)
	}
}

// BenchmarkMRTRoundTrip measures writing and re-scanning one collector
// RIB.
func BenchmarkMRTRoundTrip(b *testing.B) {
	topo, err := topology.Generate(topology.TinyConfig())
	if err != nil {
		b.Fatal(err)
	}
	sim := simulate.New(topo, simulate.TinyConfig())
	day := sim.RunDay(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := sim.WriteRIB(&buf, 1714521600, 0, day); err != nil {
			b.Fatal(err)
		}
		sc := mrt.NewTableDumpScanner(&buf)
		for {
			if _, err := sc.Next(); err != nil {
				break
			}
		}
	}
}

// BenchmarkUpdateDecode measures BGP UPDATE message decoding.
func BenchmarkUpdateDecode(b *testing.B) {
	msg := &bgp.UpdateMessage{
		Attrs: bgp.PathAttributes{
			HasOrigin: true,
			ASPath:    bgp.NewASPath(65269, 7018, 1299, 64496),
			Communities: bgp.Communities{
				bgp.NewCommunity(1299, 2569), bgp.NewCommunity(1299, 35130),
				bgp.NewCommunity(7018, 1000),
			},
		},
		NLRI: []bgp.Prefix{bgp.MustParsePrefix("192.0.2.0/24")},
	}
	wire, err := msg.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bgp.DecodeUpdate(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeRegex measures dictionary range-regex synthesis and
// matching.
func BenchmarkRangeRegex(b *testing.B) {
	d := dict.NewDictionary()
	if err := d.Add(&dict.Entry{ASN: 1299, Pattern: dict.RangeRegex(20000, 39999), Sub: dict.SubLocation}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dict.RangeRegex(uint16(i%60000), uint16(i%60000+500))
		d.Category(1299, uint16(20000+i%20000))
	}
}

// BenchmarkSeedSweep runs the seed-robustness check over three corpora
// (evalrepro runs five).
func BenchmarkSeedSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := corpus.DefaultConfig()
		cfg.Days = 1
		r, err := eval.SeedSweep(cfg, []int64{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportMetrics(b, r, "min_accuracy", "max_accuracy")
		}
	}
}

// BenchmarkFineGrained runs the §7 future-work extension: sub-category
// inference for information communities.
func BenchmarkFineGrained(b *testing.B) {
	c := benchCorpus(b)
	for i := 0; i < b.N; i++ {
		r := eval.FineGrained(c)
		if i == 0 {
			reportMetrics(b, r, "accuracy", "scored")
		}
	}
}

package bgpintent

// BENCH_pipeline.json emission harness. Gated behind
// BGPINTENT_BENCH_PIPELINE=1 because it runs the full load+classify
// pipeline several times at benchmark fidelity:
//
//	BGPINTENT_BENCH_PIPELINE=1 go test -run TestEmitPipelineBench -v .
//
// It measures the sequential path (Parallelism=1) against parallel
// worker counts for MRT load, classify, and the end-to-end pipeline,
// and writes machine-readable results (ns/op, B/op, allocs/op,
// speedup vs sequential) plus the host parallelism context to
// BENCH_pipeline.json in the working directory.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
)

type pipelineBenchResult struct {
	Name        string  `json:"name"`
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"ns_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	SpeedupVs1  float64 `json:"speedup_vs_sequential"`
	// HeapInuse is the post-GC live heap after the stage's measured
	// runs, so footprint — not just allocation churn — is tracked.
	HeapInuse int64 `json:"heap_inuse"`
}

type pipelineBenchReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// SingleCore marks a report emitted at GOMAXPROCS<2: its
	// speedup_vs_sequential columns measure scheduler overhead, not
	// parallelism, and must not be used as a scaling baseline.
	SingleCore bool                  `json:"single_core,omitempty"`
	CorpusDays int                   `json:"corpus_days"`
	RIBFiles   int                   `json:"rib_files"`
	Tuples     int                   `json:"tuples"`
	Results    []pipelineBenchResult `json:"results"`
}

// TestEmitPipelineBench measures sequential vs parallel load and
// classification and writes BENCH_pipeline.json.
func TestEmitPipelineBench(t *testing.T) {
	if os.Getenv("BGPINTENT_BENCH_PIPELINE") != "1" {
		t.Skip("set BGPINTENT_BENCH_PIPELINE=1 to run the pipeline bench harness")
	}
	singleCore := runtime.GOMAXPROCS(0) < 2
	if singleCore && os.Getenv("BGPINTENT_BENCH_ALLOW_SINGLE_CORE") != "1" {
		t.Fatalf("refusing to emit BENCH_pipeline.json at GOMAXPROCS=%d: parallel speedups "+
			"measured on one core are scheduler overhead, not scaling; run on a multi-core "+
			"host or set BGPINTENT_BENCH_ALLOW_SINGLE_CORE=1 to emit a flagged report",
			runtime.GOMAXPROCS(0))
	}
	days := benchDays()
	ribs, err := writeBenchMRT(days)
	if err != nil {
		t.Fatal(err)
	}

	report := &pipelineBenchReport{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		SingleCore: singleCore,
		CorpusDays: days,
		RIBFiles:   len(ribs),
	}
	if singleCore {
		t.Log("GOMAXPROCS<2: report will carry single_core=true; speedup columns are not a scaling baseline")
	}

	// One warm load to size the fixture for the report and to feed the
	// classify benchmarks.
	warm, _, err := LoadMRTCorpusOptions(ribs, nil, "", LoadOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	report.Tuples = warm.Tuples()

	workerCounts := []int{1, 2, 4, 8}
	measure := func(name string, workers int, fn func()) (testing.BenchmarkResult, int64) {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heapInuse := int64(ms.HeapInuse)
		t.Logf("%s workers=%d: %s %s heap_inuse=%d", name, workers, res.String(), res.MemString(), heapInuse)
		return res, heapInuse
	}
	record := func(name string, run func(workers int)) {
		var seqNs int64
		for _, w := range workerCounts {
			w := w
			res, heapInuse := measure(name, w, func() { run(w) })
			r := pipelineBenchResult{
				Name:        name,
				Workers:     w,
				NsPerOp:     res.NsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				HeapInuse:   heapInuse,
			}
			if w == 1 {
				seqNs = r.NsPerOp
			}
			if seqNs > 0 {
				r.SpeedupVs1 = float64(seqNs) / float64(r.NsPerOp)
			}
			report.Results = append(report.Results, r)
		}
	}

	record("load_mrt", func(workers int) {
		if _, _, err := LoadMRTCorpusOptions(ribs, nil, "", LoadOptions{Parallelism: workers}); err != nil {
			t.Fatal(err)
		}
	})
	record("classify", func(workers int) {
		warm.Classify(Params{Parallelism: workers})
	})
	record("pipeline", func(workers int) {
		c, _, err := LoadMRTCorpusOptions(ribs, nil, "", LoadOptions{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		c.Classify(Params{Parallelism: workers})
	})

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile("BENCH_pipeline.json", out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_pipeline.json (%d results)", len(report.Results))
}

package bgpintent

// BENCH_pipeline.json emission harness. Gated behind
// BGPINTENT_BENCH_PIPELINE=1 because it runs the full load+classify
// pipeline several times at benchmark fidelity:
//
//	BGPINTENT_BENCH_PIPELINE=1 go test -run TestEmitPipelineBench -v .
//
// It measures the sequential path (Parallelism=1) against parallel
// worker counts for MRT load, classify, and the end-to-end pipeline,
// and writes machine-readable results (ns/op, B/op, allocs/op, peak
// heap, per-stage wall breakdown, speedup vs sequential) plus the host
// machine context (CPU model, physical cores) to BENCH_pipeline.json
// in the working directory.

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"

	"bgpintent/internal/obs"
)

type pipelineBenchResult struct {
	Name        string `json:"name"`
	Workers     int    `json:"workers"`
	NsPerOp     int64  `json:"ns_op"`
	BytesPerOp  int64  `json:"bytes_op"`
	AllocsPerOp int64  `json:"allocs_op"`
	// SpeedupVs1 is omitted on single_core reports: with one core the
	// ratio measures scheduler overhead, not scaling, and publishing it
	// invites quoting a meaningless number.
	SpeedupVs1 float64 `json:"speedup_vs_sequential,omitempty"`
	// HeapInuse samples the live heap at peak — after the stage's
	// artifact (loaded corpus, classification) is built and before it
	// is released — so the number tracks the store's real footprint,
	// not the post-release residue.
	HeapInuse int64 `json:"heap_inuse"`
	// StageNs breaks one observed load_mrt run into summed
	// worker-nanoseconds per pipeline stage (open, frame, decode,
	// store-add, stitch). Frame appears only when the frame/decode
	// split pipeline activates (workers > files); intern-table time is
	// accounted inside store-add. Durations are worker-seconds, so
	// they exceed wall time when stages run in parallel.
	StageNs map[string]int64 `json:"stage_ns,omitempty"`
}

type pipelineBenchReport struct {
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	// CPUModel and PhysicalCores identify the machine the trajectory
	// was captured on; logical CPUs (NumCPU) overstate the scaling
	// headroom on SMT hosts.
	CPUModel      string `json:"cpu_model,omitempty"`
	PhysicalCores int    `json:"physical_cores"`
	// SingleCore marks a report emitted at GOMAXPROCS<2: parallel
	// worker counts measure scheduler overhead, not parallelism, and
	// must not be used as a scaling baseline. Such reports carry no
	// speedup_vs_sequential columns at all.
	SingleCore bool                  `json:"single_core,omitempty"`
	CorpusDays int                   `json:"corpus_days"`
	RIBFiles   int                   `json:"rib_files"`
	Tuples     int                   `json:"tuples"`
	Results    []pipelineBenchResult `json:"results"`
}

// cpuInfo reads the CPU model name and the physical core count from
// /proc/cpuinfo (unique (physical id, core id) pairs). On hosts
// without it — or without topology fields — the core count falls back
// to runtime.NumCPU, which counts SMT threads.
func cpuInfo() (model string, physicalCores int) {
	physicalCores = runtime.NumCPU()
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return "", physicalCores
	}
	type coreKey struct{ phys, core string }
	seen := map[coreKey]bool{}
	var phys, core string
	flush := func() {
		if phys != "" || core != "" {
			seen[coreKey{phys, core}] = true
		}
		phys, core = "", ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			flush() // blank line ends a processor block
			continue
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		switch k {
		case "model name":
			if model == "" {
				model = v
			}
		case "physical id":
			phys = v
		case "core id":
			core = v
		}
	}
	flush()
	if len(seen) > 0 {
		physicalCores = len(seen)
	}
	return model, physicalCores
}

// TestEmitPipelineBench measures sequential vs parallel load and
// classification and writes BENCH_pipeline.json.
func TestEmitPipelineBench(t *testing.T) {
	if os.Getenv("BGPINTENT_BENCH_PIPELINE") != "1" {
		t.Skip("set BGPINTENT_BENCH_PIPELINE=1 to run the pipeline bench harness")
	}
	singleCore := runtime.GOMAXPROCS(0) < 2
	if singleCore && os.Getenv("BGPINTENT_BENCH_ALLOW_SINGLE_CORE") != "1" {
		t.Fatalf("refusing to emit BENCH_pipeline.json at GOMAXPROCS=%d: parallel speedups "+
			"measured on one core are scheduler overhead, not scaling; run on a multi-core "+
			"host or set BGPINTENT_BENCH_ALLOW_SINGLE_CORE=1 to emit a flagged report",
			runtime.GOMAXPROCS(0))
	}
	days := benchDays()
	ribs, err := writeBenchMRT(days, false)
	if err != nil {
		t.Fatal(err)
	}

	model, cores := cpuInfo()
	report := &pipelineBenchReport{
		GoVersion:     runtime.Version(),
		NumCPU:        runtime.NumCPU(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		CPUModel:      model,
		PhysicalCores: cores,
		SingleCore:    singleCore,
		CorpusDays:    days,
		RIBFiles:      len(ribs),
	}
	if singleCore {
		t.Log("GOMAXPROCS<2: report will carry single_core=true and no speedup columns")
	}

	// One warm load to size the fixture for the report and to feed the
	// classify benchmarks.
	warm, _, err := LoadMRTCorpusOptions(ribs, nil, "", LoadOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	report.Tuples = warm.Tuples()

	workerCounts := []int{1, 2, 4, 8}
	measure := func(name string, workers int, fn func()) testing.BenchmarkResult {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fn()
			}
		})
		t.Logf("%s workers=%d: %s %s", name, workers, res.String(), res.MemString())
		return res
	}
	// peakHeap runs the stage once more and samples the live heap while
	// its artifact is still referenced: the footprint at peak, not what
	// is left after the corpus is dropped.
	peakHeap := func(build func() any) int64 {
		artifact := build()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		h := int64(ms.HeapInuse)
		runtime.KeepAlive(artifact)
		return h
	}
	record := func(name string, run func(workers int), keep func(workers int) any, stages func(workers int) map[string]int64) {
		var seqNs int64
		for _, w := range workerCounts {
			w := w
			res := measure(name, w, func() { run(w) })
			r := pipelineBenchResult{
				Name:        name,
				Workers:     w,
				NsPerOp:     res.NsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				HeapInuse:   peakHeap(func() any { return keep(w) }),
			}
			if stages != nil {
				r.StageNs = stages(w)
			}
			if w == 1 {
				seqNs = r.NsPerOp
			}
			if !singleCore && seqNs > 0 {
				r.SpeedupVs1 = float64(seqNs) / float64(r.NsPerOp)
			}
			report.Results = append(report.Results, r)
		}
	}

	mustLoad := func(workers int, o LoadOptions) *Corpus {
		o.Parallelism = workers
		c, _, err := LoadMRTCorpusOptions(ribs, nil, "", o)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// loadStages runs one observed load and sums span durations by
	// stage. Observation itself costs a little (per-tuple store-add
	// timing), which is why the breakdown comes from a separate run
	// rather than the measured ones.
	loadStages := func(workers int) map[string]int64 {
		var mu sync.Mutex
		agg := map[string]int64{}
		col := obs.Funcs{OnStageEnd: func(span obs.Span) {
			mu.Lock()
			agg[string(span.Stage)] += int64(span.Duration)
			mu.Unlock()
		}}
		mustLoad(workers, LoadOptions{Observer: col})
		return agg
	}

	record("load_mrt",
		func(workers int) { mustLoad(workers, LoadOptions{}) },
		func(workers int) any { return mustLoad(workers, LoadOptions{}) },
		loadStages)
	record("classify",
		func(workers int) { warm.Classify(Params{Parallelism: workers}) },
		func(workers int) any { return warm.Classify(Params{Parallelism: workers}) },
		nil)
	record("pipeline",
		func(workers int) {
			mustLoad(workers, LoadOptions{}).Classify(Params{Parallelism: workers})
		},
		func(workers int) any {
			c := mustLoad(workers, LoadOptions{})
			return []any{c, c.Classify(Params{Parallelism: workers})}
		},
		nil)

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile("BENCH_pipeline.json", out, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_pipeline.json (%d results)", len(report.Results))
}

// Package bgpintent infers the coarse-grained intent of BGP communities
// — action versus information — from public BGP routing data, after
// Krenc, Luckie, Marder and claffy, "Coarse-grained Inference of BGP
// Community Intent" (IMC 2023).
//
// The library ships everything needed to reproduce the paper offline:
// a BGP/MRT substrate, a synthetic Internet and route-propagation
// simulator that stands in for RouteViews/RIPE RIS, the inference
// pipeline itself, a reimplementation of the Da Silva et al. location
// inference it improves, and an experiment harness regenerating every
// table and figure (see DESIGN.md and EXPERIMENTS.md).
//
// Quick start:
//
//	c, err := bgpintent.NewSyntheticCorpus(bgpintent.CorpusOptions{})
//	if err != nil { ... }
//	res := c.Classify(bgpintent.DefaultParams())
//	cat := res.Category(bgpintent.Comm(1299, 2569)) // Action
//
// Real MRT archives (TABLE_DUMP_V2 RIBs and BGP4MP updates) load with
// LoadMRT, which also accepts a context for cancellation and an
// Observer for stage tracing and progress reporting.
package bgpintent

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"bgpintent/internal/asrel"
	"bgpintent/internal/bgp"
	"bgpintent/internal/core"
	"bgpintent/internal/corpus"
	"bgpintent/internal/dict"
	"bgpintent/internal/ingest"
	"bgpintent/internal/mrt"
	"bgpintent/internal/obs"
)

// Observability types, re-exported from the internal obs package so
// callers outside this module can implement Observer and consume spans.
type (
	// Observer receives pipeline telemetry: stage starts, completed
	// stage spans, and periodic progress heartbeats. Implementations
	// must be safe for concurrent use — per-file spans arrive from
	// ingestion workers running in parallel.
	Observer = obs.Observer
	// Stage names one pipeline stage in spans and progress events.
	Stage = obs.Stage
	// Span is one completed stage: wall time, throughput counters and —
	// for sequential top-level stages — allocation deltas.
	Span = obs.Span
	// ProgressEvent is a periodic heartbeat with live counters.
	ProgressEvent = obs.ProgressEvent
)

// Pipeline stages, in execution order. Open and Decode are per-file
// spans emitted concurrently by ingestion workers; the rest are
// sequential top-level stages.
const (
	StageOpen     = obs.StageOpen
	StageDecode   = obs.StageDecode
	StageFrame    = obs.StageFrame
	StageStoreAdd = obs.StageStoreAdd
	StageStitch   = obs.StageStitch
	// StageShardMerge is the pre-stitch name of the shard-collapse
	// phase; loads no longer emit it. Kept so existing trace consumers
	// keep building.
	StageShardMerge    = obs.StageShardMerge
	StageObserve       = obs.StageObserve
	StageCluster       = obs.StageCluster
	StageRatio         = obs.StageRatio
	StageClassify      = obs.StageClassify
	StageSnapshotWrite = obs.StageSnapshotWrite
)

// Category is the inferred coarse-grained intent of a community.
type Category int8

const (
	// Unknown: unobserved, or excluded from classification (private-ASN
	// α, or an α that never appears in AS paths, such as IXP route
	// servers).
	Unknown Category = iota
	// Action communities are set by neighbors to influence routing in
	// the AS identified by the community's first half.
	Action
	// Information communities are set by that AS itself to record route
	// metadata (ingress location, neighbor relationship, ROV status...).
	Information
)

// String returns "unknown", "action" or "information".
func (c Category) String() string {
	switch c {
	case Action:
		return "action"
	case Information:
		return "information"
	default:
		return "unknown"
	}
}

func fromDictCategory(c dict.Category) Category {
	switch c {
	case dict.CatAction:
		return Action
	case dict.CatInformation:
		return Information
	default:
		return Unknown
	}
}

// Community is a regular 32-bit BGP community α:β.
//
// Deprecated: Community predates large-community support and can only
// name classic communities. New code should use CommunityKey, which
// covers both classic α:β and RFC 8092 α:fn:value keys under one
// identity; existing callers keep compiling unchanged.
type Community struct {
	ASN   uint16 // α: the AS defining the meaning
	Value uint16 // β: the operator-assigned value
}

// Comm builds a Community.
//
// Deprecated: use ClassicKey, which returns the generalized
// CommunityKey accepted by the kind-aware query APIs.
func Comm(asn, value uint16) Community { return Community{ASN: asn, Value: value} }

// String renders α:β.
func (c Community) String() string { return fmt.Sprintf("%d:%d", c.ASN, c.Value) }

func (c Community) wire() bgp.Community { return bgp.NewCommunity(c.ASN, c.Value) }

// Key converts the classic community to its generalized key.
func (c Community) Key() CommunityKey { return ClassicKey(c.ASN, c.Value) }

// CommunityKind says which community family a CommunityKey names.
type CommunityKind int8

const (
	// KindClassic is a regular RFC 1997 community α:β.
	KindClassic CommunityKind = iota
	// KindLarge is an RFC 8092 large community α:fn:value.
	KindLarge
)

// String returns "classic" or "large".
func (k CommunityKind) String() string {
	if k == KindLarge {
		return "large"
	}
	return "classic"
}

// CommunityKey is the generalized community identity the inference
// APIs accept: a classic α:β (16-bit halves) or a large α:fn:value
// (three 32-bit words) under one comparable value type. The zero value
// is the classic community 0:0.
type CommunityKey struct {
	kind CommunityKind
	asn  uint32 // α (classic) / GlobalAdmin (large)
	fn   uint32 // LocalData1; always 0 for classic keys
	val  uint32 // β (classic) / LocalData2 (large)
}

// ClassicKey builds the key of a regular community α:β.
func ClassicKey(asn, value uint16) CommunityKey {
	return CommunityKey{kind: KindClassic, asn: uint32(asn), val: uint32(value)}
}

// LargeKey builds the key of a large community α:fn:value.
func LargeKey(asn, fn, value uint32) CommunityKey {
	return CommunityKey{kind: KindLarge, asn: asn, fn: fn, val: value}
}

// ParseCommunityKey parses "α:β" (classic) or "α:fn:value" (large);
// String is its exact inverse.
func ParseCommunityKey(s string) (CommunityKey, error) {
	comms, larges, err := bgp.ParseCommunities(s)
	if err != nil {
		return CommunityKey{}, err
	}
	switch {
	case len(comms) == 1 && len(larges) == 0:
		return ClassicKey(comms[0].ASN(), comms[0].Value()), nil
	case len(comms) == 0 && len(larges) == 1:
		lc := larges[0]
		return LargeKey(lc.GlobalAdmin, lc.LocalData1, lc.LocalData2), nil
	default:
		return CommunityKey{}, fmt.Errorf("bgpintent: %q is not a single community", s)
	}
}

// Kind reports whether the key names a classic or a large community.
func (k CommunityKey) Kind() CommunityKind { return k.kind }

// ASN is α: the AS defining the community's meaning (the global
// administrator for large keys).
func (k CommunityKey) ASN() uint32 { return k.asn }

// Fn is the large key's function selector (LocalData1); 0 for classic
// keys.
func (k CommunityKey) Fn() uint32 { return k.fn }

// Value is the operator-assigned value: β for classic keys, LocalData2
// for large ones.
func (k CommunityKey) Value() uint32 { return k.val }

// String renders "α:β" or "α:fn:value"; ParseCommunityKey is its
// exact inverse.
func (k CommunityKey) String() string {
	if k.kind == KindLarge {
		return fmt.Sprintf("%d:%d:%d", k.asn, k.fn, k.val)
	}
	return fmt.Sprintf("%d:%d", k.asn, k.val)
}

// wireLarge converts a large key to its wire form; only valid when
// Kind() == KindLarge.
func (k CommunityKey) wireLarge() bgp.LargeCommunity {
	return bgp.LargeCommunity{GlobalAdmin: k.asn, LocalData1: k.fn, LocalData2: k.val}
}

// Params are the classifier parameters; the defaults are the paper's
// operating point.
type Params struct {
	// MinGap is the maximum distance between adjacent β values within one
	// cluster (paper: 140; 0 disables clustering).
	MinGap int
	// RatioThreshold is the on-path:off-path ratio at or above which a
	// mixed cluster is information (paper: 160).
	RatioThreshold float64
	// Parallelism bounds the classifier's worker pool: 0 means one
	// worker per CPU (GOMAXPROCS), 1 forces sequential execution.
	// Results are identical for every setting.
	Parallelism int
	// Observer, when non-nil, receives a span per classification stage
	// (observe, cluster, ratio, classify). It does not change results:
	// an observed run is byte-identical to an unobserved one.
	Observer Observer
}

// DefaultParams returns the paper's parameters (gap 140, ratio 160:1).
func DefaultParams() Params { return Params{MinGap: 140, RatioThreshold: 160} }

// Validate rejects nonsensical classifier parameters. The zero value of
// each field means "use the paper default" and is always valid; set
// fields must make sense: MinGap cannot be negative, and a set
// RatioThreshold must be at least 1 (the ratio compares on-path to
// off-path evidence, so values in (0,1) would label clusters dominated
// by off-path observations as information).
func (p Params) Validate() error {
	if p.MinGap < 0 {
		return fmt.Errorf("bgpintent: MinGap %d is negative (0 disables clustering)", p.MinGap)
	}
	if p.RatioThreshold < 0 {
		return fmt.Errorf("bgpintent: RatioThreshold %g is negative", p.RatioThreshold)
	}
	if p.RatioThreshold > 0 && p.RatioThreshold < 1 {
		return fmt.Errorf("bgpintent: RatioThreshold %g is below 1 (use 0 for the paper default of %g)",
			p.RatioThreshold, DefaultParams().RatioThreshold)
	}
	return nil
}

// CorpusOptions control synthetic corpus generation.
type CorpusOptions struct {
	// Seed selects the deterministic corpus; 0 means seed 1.
	Seed int64
	// Days of simulated BGP data (default 7, like the paper's week).
	Days int
	// Small selects the fast test-sized corpus instead of the default
	// benchmark scale.
	Small bool
	// DisableLargeCommunities produces a classic-only corpus: the
	// simulator skips large-community (RFC 8092) mirroring entirely.
	// Classic routes are unchanged either way.
	DisableLargeCommunities bool
	// LargeMatrix makes large-community mirroring deterministic — every
	// eligible plan community an origin attaches gets its large twin
	// (the arouteserver-style std/lrg announce/suppress matrix) —
	// instead of the default probabilistic sampling.
	LargeMatrix bool
}

// Corpus is a loaded BGP dataset ready for classification: unique
// (AS path, communities) tuples plus the as2org sibling context.
type Corpus struct {
	store *core.TupleStore
	orgs  *asrel.OrgMap

	// synthetic extras (nil for MRT-loaded corpora)
	syn *corpus.Corpus
}

// NewSyntheticCorpus generates the paper-substitute corpus: a synthetic
// Internet whose routing and community-tagging behavior reproduces the
// distributions the method relies on (see DESIGN.md §2).
func NewSyntheticCorpus(opts CorpusOptions) (*Corpus, error) {
	cfg := corpus.DefaultConfig()
	if opts.Small {
		cfg = corpus.TinyConfig()
	}
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.Days != 0 {
		cfg.Days = opts.Days
	}
	cfg.NoLargeComms = opts.DisableLargeCommunities
	cfg.LargeMatrix = opts.LargeMatrix
	c, err := corpus.Build(cfg)
	if err != nil {
		return nil, err
	}
	return &Corpus{store: c.Store, orgs: c.Orgs, syn: c}, nil
}

// DefaultMaxErrorRate is the default per-file error budget for lenient
// MRT loading: above this corruption rate a load aborts rather than
// passing silent garbage off as a clean corpus.
const DefaultMaxErrorRate = ingest.DefaultMaxErrorRate

// LoadOptions control the fault tolerance of MRT corpus loading.
type LoadOptions struct {
	// Strict fails on the first malformed record. The default (lenient)
	// skips undecodable records and resynchronizes over corrupt framing,
	// within the error budget.
	Strict bool
	// MaxErrorRate is the lenient-mode error budget: the per-file
	// fraction of corrupt records above which the load aborts. 0 means
	// DefaultMaxErrorRate; negative disables the budget.
	MaxErrorRate float64
	// Parallelism bounds concurrent decode workers: 0 means one worker
	// per CPU (GOMAXPROCS), 1 forces the sequential load path. With
	// more workers than input files the ingestion layer splits single
	// files across workers (frame/decode pipeline). Any setting
	// produces an identical corpus and identical LoadStats.
	Parallelism int
	// ForceFrameSplit makes ingestion split every file across the
	// decode workers even when file-level parallelism would cover them.
	// For tests and experiments; output is identical either way.
	ForceFrameSplit bool
	// Observer, when non-nil, receives per-file open/decode spans, the
	// frame, store-add and stitch stage spans, and progress events. It
	// does not change results: an observed load produces a corpus
	// byte-identical to an unobserved one.
	Observer Observer
	// ProgressInterval is the heartbeat period for periodic
	// ProgressEvents; 0 disables the ticker (a final event still fires
	// when the load completes). Ignored without an Observer.
	ProgressInterval time.Duration
}

// Sources names the inputs of one MRT corpus load.
type Sources struct {
	// RIBs are TABLE_DUMP_V2 RIB dump paths; Updates are BGP4MP updates
	// paths. .gz and .bz2 archives are decompressed transparently.
	RIBs    []string
	Updates []string
	// OrgPath optionally points at an as2org file ("asn|org" lines)
	// mapping ASNs to organizations for sibling-aware on-path tests.
	OrgPath string
}

// LoadStats summarizes what an MRT load salvaged and what it dropped.
type LoadStats struct {
	Files          int   // files ingested
	Records        int   // MRT records framed
	Decoded        int   // records decoded into routes
	Skipped        int   // undecodable records (or RIB entries) dropped
	Resyncs        int   // framing failures recovered by resynchronization
	TruncatedFiles int   // files that ended mid-record
	UnknownRecords int   // records of types the pipeline does not decode
	BytesRead      int64 // bytes consumed
	BytesSkipped   int64 // bytes lost to corruption
}

// Clean reports whether the load saw no corruption at all.
func (s LoadStats) Clean() bool {
	return s.Skipped == 0 && s.Resyncs == 0 && s.TruncatedFiles == 0
}

// Summary renders a one-line account of the load.
func (s LoadStats) Summary() string {
	if s.Clean() {
		return fmt.Sprintf("%d files, %d records (%d decoded, %d unknown-type), no corruption",
			s.Files, s.Records, s.Decoded, s.UnknownRecords)
	}
	return fmt.Sprintf("%d files, %d records (%d decoded, %d unknown-type), %d skipped, %d resyncs, %d truncated files, %d bytes lost of %d read",
		s.Files, s.Records, s.Decoded, s.UnknownRecords, s.Skipped, s.Resyncs, s.TruncatedFiles, s.BytesSkipped, s.BytesRead)
}

func loadStats(ist *ingest.Stats) LoadStats {
	t := &ist.Total
	return LoadStats{
		Files:          len(ist.Files),
		Records:        t.Records,
		Decoded:        t.Decoded,
		Skipped:        t.Skipped,
		Resyncs:        t.Resyncs,
		TruncatedFiles: t.Truncated,
		UnknownRecords: t.UnknownCount(),
		BytesRead:      t.BytesRead,
		BytesSkipped:   t.BytesSkipped,
	}
}

// LoadMRTCorpus reads TABLE_DUMP_V2 RIB files and BGP4MP updates files
// plus an optional as2org file and builds the tuple corpus with the
// default (lenient) options.
//
// Deprecated: use LoadMRT, which adds cancellation, observability, and
// load statistics.
func LoadMRTCorpus(ribPaths, updatePaths []string, orgPath string) (*Corpus, error) {
	c, _, err := LoadMRT(context.Background(),
		Sources{RIBs: ribPaths, Updates: updatePaths, OrgPath: orgPath}, LoadOptions{})
	return c, err
}

// LoadMRTCorpusOptions is LoadMRTCorpus with explicit fault-tolerance
// options, also returning ingestion statistics.
//
// Deprecated: use LoadMRT, which takes the same options plus a context.
func LoadMRTCorpusOptions(ribPaths, updatePaths []string, orgPath string, opts LoadOptions) (*Corpus, LoadStats, error) {
	return LoadMRT(context.Background(),
		Sources{RIBs: ribPaths, Updates: updatePaths, OrgPath: orgPath}, opts)
}

// LoadMRT reads the named TABLE_DUMP_V2 RIB and BGP4MP updates files
// (the RouteViews/RIS archive formats; .gz and .bz2 are decompressed
// transparently) plus an optional as2org file, and builds the tuple
// corpus. Loading is lenient with the default error budget unless
// opts says otherwise.
//
// Canceling ctx aborts the load between records with ctx.Err(); no
// goroutine outlives the call. The returned LoadStats are valid even
// when the load fails, covering the files processed so far.
func LoadMRT(ctx context.Context, src Sources, opts LoadOptions) (*Corpus, LoadStats, error) {
	tr := obs.NewTracer(opts.Observer, opts.ProgressInterval)
	defer tr.Close()

	c := &Corpus{orgs: asrel.NewOrgMap()}
	iopts := ingest.Options{
		Strict:          opts.Strict,
		MaxErrorRate:    opts.MaxErrorRate,
		Tracer:          tr,
		ForceFrameSplit: opts.ForceFrameSplit,
	}
	ist := &ingest.Stats{}

	files := make([]ingest.InputFile, 0, len(src.RIBs)+len(src.Updates))
	for _, path := range src.RIBs {
		files = append(files, ingest.InputFile{Path: path})
	}
	for _, path := range src.Updates {
		files = append(files, ingest.InputFile{Path: path, Updates: true})
	}
	tr.SetFiles(int64(len(files)))
	tr.StartProgress()

	// Decode workers feed the sharded store; the deterministic stitch
	// makes the corpus independent of scheduling. The shard count is
	// fixed (not derived from Parallelism) so each shard's contents —
	// and therefore the stitched layout — are identical at any worker
	// count.
	sts := core.NewShardedTupleStore(64)
	ribFn := func(v *mrt.RIBView) error {
		sts.AddViewASPathLarge(v.Peer.ASN, v.Entry.Attrs.ASPath, v.Entry.Attrs.Communities, v.Entry.Attrs.LargeCommunities)
		return nil
	}
	updFn := func(v *mrt.UpdateView) error {
		if len(v.Update.NLRI) == 0 {
			return nil // pure withdrawals carry no tuple
		}
		sts.AddViewASPathLarge(v.PeerAS, v.Update.Attrs.ASPath, v.Update.Attrs.Communities, v.Update.Attrs.LargeCommunities)
		return nil
	}
	if tr.Active() {
		// Wrap the store feeds with per-tuple timing, accumulated into
		// one aggregate store-add span (summed worker-seconds). Only
		// when observed — the unobserved hot path stays untouched.
		ribFn = timedStoreAdd(tr, ribFn)
		updFn = timedStoreAdd(tr, updFn)
	}
	err := ingest.ScanParallelContext(ctx, files, iopts, opts.Parallelism, ist, ribFn, updFn)
	tr.FlushAggregates()
	if err != nil {
		return nil, loadStats(ist), err
	}
	err = tr.Stage(ctx, obs.StageStitch, "", func(s *obs.Span) {
		s.Tuples = int64(c.store.Len())
		tr.AddTuples(int64(c.store.Len()))
	}, func(ctx context.Context) error {
		c.store = sts.Stitch(opts.Parallelism)
		return nil
	})
	if err != nil {
		return nil, loadStats(ist), err
	}

	if src.OrgPath != "" {
		f, err := os.Open(src.OrgPath)
		if err != nil {
			return nil, loadStats(ist), err
		}
		defer f.Close()
		m, err := asrel.ReadOrgMap(f)
		if err != nil {
			return nil, loadStats(ist), err
		}
		c.orgs = m
	}
	c.store.AnnotateOrgs(c.orgs)
	return c, loadStats(ist), nil
}

// timedStoreAdd wraps one ingest callback with store-add accounting:
// per-call time accumulates into the aggregate store-add span emitted
// once ingestion completes.
func timedStoreAdd[V any](tr *obs.Tracer, fn func(V) error) func(V) error {
	return func(v V) error {
		start := time.Now()
		err := fn(v)
		tr.AddStageTime(obs.StageStoreAdd, time.Since(start), 1)
		return err
	}
}

// Tuples returns the number of unique (AS path, communities) tuples.
func (c *Corpus) Tuples() int { return c.store.Len() }

// Paths returns the number of unique AS paths.
func (c *Corpus) Paths() int { return c.store.PathCount() }

// LargeCommunities returns the number of distinct large (96-bit)
// communities observed. Large communities are full inference subjects:
// they are keyed into tuples alongside regular communities and
// clustered per (administrator, function) group by Classify.
func (c *Corpus) LargeCommunities() int { return c.store.LargeCommunityCount() }

// Communities returns the distinct observed communities.
func (c *Corpus) Communities() []Community {
	raw := c.store.Communities()
	out := make([]Community, len(raw))
	for i, r := range raw {
		out[i] = Community{ASN: r.ASN(), Value: r.Value()}
	}
	return out
}

// VantagePoints returns the distinct vantage-point ASNs in the corpus.
func (c *Corpus) VantagePoints() []uint32 { return c.store.VPSet() }

// Classify runs the paper's inference pipeline over the corpus.
//
// Deprecated: use ClassifyContext, which adds cancellation, parameter
// validation and observability. Classify panics on parameters that
// ClassifyContext would reject (no in-tree caller passes any).
func (c *Corpus) Classify(p Params) *Result {
	r, err := c.ClassifyContext(context.Background(), p)
	if err != nil {
		panic(err) // Background never cancels, so this is Validate
	}
	return r
}

// ClassifyContext runs the paper's inference pipeline over the corpus.
// Invalid parameters are rejected up front (see Params.Validate);
// canceling ctx aborts the run with ctx.Err() within a bounded number
// of loop iterations per worker, and no goroutine outlives the call.
func (c *Corpus) ClassifyContext(ctx context.Context, p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()
	if p.MinGap > 0 || p.RatioThreshold > 0 {
		opts.MinGap = p.MinGap
		opts.RatioThreshold = p.RatioThreshold
	}
	opts.Workers = p.Parallelism
	opts.Orgs = c.orgs
	opts.Tracer = obs.NewTracer(p.Observer, 0)
	inf, err := core.ClassifyContext(ctx, c.store, opts)
	if err != nil {
		return nil, err
	}
	return newResult(inf), nil
}

// ExcludeReason explains why a community was not classified.
type ExcludeReason string

// Exclusion reasons.
const (
	ExcludedPrivateASN  ExcludeReason = "private-asn"
	ExcludedNeverOnPath ExcludeReason = "never-on-path"
	// ExcludedUnobserved is reported by Lookup for communities that do
	// not appear in the corpus at all.
	ExcludedUnobserved ExcludeReason = "unobserved"
)

// Result holds the inferences for one corpus. It may be heap-resident
// (classifier output, v1 snapshot) or a zero-copy view over an
// mmap-ed v2 snapshot file — queries behave identically either way.
type Result struct {
	src core.InferenceSource

	// mapped is non-nil when src serves straight from a snapshot file.
	mapped *core.Mapped

	// Lazily built ASN → clusters index for heap-backed results (mapped
	// ones binary-search the snapshot's sorted cluster section instead).
	asnOnce sync.Once
	asnIdx  map[uint16][]Cluster
}

func newResult(inf *core.Inferences) *Result { return &Result{src: inf} }

func newMappedResult(m *core.Mapped) *Result { return &Result{src: m, mapped: m} }

// inferences returns the heap form of the result, materializing a
// mapped one (full copy) on demand.
func (r *Result) inferences() *core.Inferences { return r.src.Materialize() }

// Mmapped reports whether the result serves directly from a memory-
// mapped snapshot file (false for heap-resident results, and on
// platforms where mapping fell back to a heap read).
func (r *Result) Mmapped() bool { return r.mapped != nil && r.mapped.Mmapped() }

// SnapshotPath returns the backing snapshot file for a result opened
// with OpenSnapshotFile, "" otherwise.
func (r *Result) SnapshotPath() string {
	if r.mapped == nil {
		return ""
	}
	return r.mapped.Path()
}

// Close releases the snapshot mapping, if any. Queries must not race
// with or follow Close; heap-backed results ignore it.
func (r *Result) Close() error {
	if r.mapped == nil {
		return nil
	}
	return r.mapped.Close()
}

// Category returns the inferred label for a community.
func (r *Result) Category(c Community) Category {
	return fromDictCategory(r.src.Category(c.wire()))
}

// Excluded returns the exclusion reason, if the community was seen but
// deliberately left unclassified.
func (r *Result) Excluded(c Community) (ExcludeReason, bool) {
	v := r.src.Verdict(c.wire())
	if !v.Observed || v.Reason == core.ExcludeNone {
		return "", false
	}
	return ExcludeReason(v.Reason.String()), true
}

// Counts returns the number of action and information inferences.
func (r *Result) Counts() (action, information int) {
	return r.src.Counts()
}

// ExcludedCount returns how many observed communities were deliberately
// left unclassified.
func (r *Result) ExcludedCount() int { return r.src.ExcludedCount() }

// ObservedCount returns how many distinct communities the result covers
// (classified plus excluded).
func (r *Result) ObservedCount() int { return r.src.Observed() }

// Labeled returns every classified community with its label, sorted.
func (r *Result) Labeled() []LabeledCommunity {
	action, information := r.src.Counts()
	out := make([]LabeledCommunity, 0, action+information)
	r.src.EachLabeled(func(comm bgp.Community, cat dict.Category) bool {
		out = append(out, LabeledCommunity{
			Community: Community{ASN: comm.ASN(), Value: comm.Value()},
			Category:  fromDictCategory(cat),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Community, out[j].Community
		if a.ASN != b.ASN {
			return a.ASN < b.ASN
		}
		return a.Value < b.Value
	})
	return out
}

// LabeledCommunity pairs a community with its inferred category.
type LabeledCommunity struct {
	Community Community
	Category  Category
}

// Cluster is one inferred community cluster: the contiguous value range
// one AS devotes to a single purpose, with the evidence behind its
// label.
type Cluster struct {
	ASN      uint16
	Lo, Hi   uint16
	Category Category
	Size     int // observed member communities
	// OnPath/OffPath are the summed unique-path counts of the members.
	OnPath, OffPath int
	// PureOnPath/PureOffPath mark clusters never observed off-path /
	// on-path; Ratio is the decision ratio of mixed clusters.
	PureOnPath  bool
	PureOffPath bool
	Ratio       float64
}

func clusterFromSummary(cs core.ClusterSummary) Cluster {
	return Cluster{
		ASN:         cs.Alpha,
		Lo:          cs.Lo,
		Hi:          cs.Hi,
		Category:    fromDictCategory(cs.Label),
		Size:        cs.Size,
		OnPath:      int(cs.OnPath),
		OffPath:     int(cs.OffPath),
		PureOnPath:  cs.PureOnPath,
		PureOffPath: cs.PureOffPath,
		Ratio:       cs.Ratio,
	}
}

// Clusters returns every inferred cluster, sorted by (ASN, Lo) — the
// coarse community dictionary structure the paper's Figure 4 shows.
func (r *Result) Clusters() []Cluster {
	n := r.src.ClusterCount()
	out := make([]Cluster, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, clusterFromSummary(r.src.ClusterSummaryAt(i)))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ASN != out[j].ASN {
			return out[i].ASN < out[j].ASN
		}
		return out[i].Lo < out[j].Lo
	})
	return out
}

// ClusterCount returns the number of inferred clusters.
func (r *Result) ClusterCount() int { return r.src.ClusterCount() }

// ClustersFor returns the clusters of one signaling AS, in ascending
// Lo order. Mapped results binary-search the snapshot's (ASN, Lo)-
// sorted cluster section; heap results consult a lazily built index.
func (r *Result) ClustersFor(asn uint16) []Cluster {
	if r.mapped != nil {
		lo, hi := r.mapped.AlphaClusters(asn)
		if lo == hi {
			return nil
		}
		out := make([]Cluster, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, clusterFromSummary(r.mapped.ClusterSummaryAt(i)))
		}
		return out
	}
	r.asnOnce.Do(func() {
		r.asnIdx = make(map[uint16][]Cluster)
		for _, cl := range r.Clusters() {
			r.asnIdx[cl.ASN] = append(r.asnIdx[cl.ASN], cl)
		}
	})
	return r.asnIdx[asn]
}

// WriteTSV emits the inferences as "community<TAB>category" lines, the
// shape of the paper's released inference dataset. When the result
// covers large communities every line gains a third "kind" column
// (classic|large) and the large inferences follow the classic ones;
// classic-only results keep the two-column shape byte for byte.
func (r *Result) WriteTSV(w io.Writer) error {
	if r.src.LargeObserved() == 0 {
		for _, lc := range r.Labeled() {
			if _, err := fmt.Fprintf(w, "%s\t%s\n", lc.Community, lc.Category); err != nil {
				return err
			}
		}
		return nil
	}
	for _, lc := range r.Labeled() {
		if _, err := fmt.Fprintf(w, "%s\t%s\tclassic\n", lc.Community, lc.Category); err != nil {
			return err
		}
	}
	for _, lk := range r.LabeledLarge() {
		if _, err := fmt.Fprintf(w, "%s\t%s\tlarge\n", lk.Key, lk.Category); err != nil {
			return err
		}
	}
	return nil
}

// Lookup is the full verdict for one community: the label, the
// per-community evidence, the cluster that decided it, and — when
// unclassified — the reason why (private-ASN α, never-on-path α, or
// simply unobserved).
type Lookup struct {
	Community Community
	Observed  bool
	Category  Category
	// OnPath/OffPath count the unique AS paths the community was
	// observed on with/without α (or a sibling) in the path.
	OnPath, OffPath int
	// Reason is empty for classified communities.
	Reason ExcludeReason
	// Cluster is the deciding cluster; nil when excluded or unobserved.
	Cluster *Cluster
}

// Lookup explains a community's verdict.
func (r *Result) Lookup(c Community) Lookup {
	v := r.src.Verdict(c.wire())
	out := Lookup{
		Community: c,
		Observed:  v.Observed,
		Category:  fromDictCategory(v.Category),
		OnPath:    v.Stats.OnPath,
		OffPath:   v.Stats.OffPath,
	}
	if v.Reason != core.ExcludeNone {
		out.Reason = ExcludeReason(v.Reason.String())
	}
	if v.HasCluster {
		cl := clusterFromSummary(v.Cluster)
		out.Cluster = &cl
	}
	return out
}

// LargeCluster is one inferred large-community cluster: the contiguous
// LocalData2 range one (administrator, function) pair devotes to a
// single purpose, with the evidence behind its label.
type LargeCluster struct {
	ASN      uint32 // global administrator (α)
	Fn       uint32 // function selector (LocalData1)
	Lo, Hi   uint32 // LocalData2 bounds
	Category Category
	Size     int // observed member communities
	// OnPath/OffPath are the summed unique-path counts of the members.
	OnPath, OffPath int
	// PureOnPath/PureOffPath mark clusters never observed off-path /
	// on-path; Ratio is the decision ratio of mixed clusters.
	PureOnPath  bool
	PureOffPath bool
	Ratio       float64
}

func largeClusterFromSummary(cs core.LargeClusterSummary) LargeCluster {
	return LargeCluster{
		ASN:         cs.Alpha,
		Fn:          cs.Fn,
		Lo:          cs.Lo,
		Hi:          cs.Hi,
		Category:    fromDictCategory(cs.Label),
		Size:        cs.Size,
		OnPath:      int(cs.OnPath),
		OffPath:     int(cs.OffPath),
		PureOnPath:  cs.PureOnPath,
		PureOffPath: cs.PureOffPath,
		Ratio:       cs.Ratio,
	}
}

// KeyLookup is the kind-aware counterpart of Lookup: the full verdict
// for a classic or large community named by its CommunityKey.
type KeyLookup struct {
	Key      CommunityKey
	Observed bool
	Category Category
	// OnPath/OffPath count the unique AS paths the community was
	// observed on with/without its administrator (or a sibling) in the
	// path.
	OnPath, OffPath int
	// Reason is empty for classified communities.
	Reason ExcludeReason
	// Cluster is the deciding classic cluster; nil for large keys and
	// for excluded/unobserved communities.
	Cluster *Cluster
	// LargeCluster is the deciding large cluster; nil for classic keys
	// and for excluded/unobserved communities.
	LargeCluster *LargeCluster
}

// LookupKey explains the verdict for a community of either kind.
func (r *Result) LookupKey(k CommunityKey) KeyLookup {
	if k.Kind() == KindLarge {
		v := r.src.VerdictLarge(k.wireLarge())
		out := KeyLookup{
			Key:      k,
			Observed: v.Observed,
			Category: fromDictCategory(v.Category),
			OnPath:   v.Stats.OnPath,
			OffPath:  v.Stats.OffPath,
		}
		if v.Reason != core.ExcludeNone {
			out.Reason = ExcludeReason(v.Reason.String())
		}
		if v.HasCluster {
			cl := largeClusterFromSummary(v.Cluster)
			out.LargeCluster = &cl
		}
		return out
	}
	l := r.Lookup(Community{ASN: uint16(k.asn), Value: uint16(k.val)})
	return KeyLookup{
		Key:      k,
		Observed: l.Observed,
		Category: l.Category,
		OnPath:   l.OnPath,
		OffPath:  l.OffPath,
		Reason:   l.Reason,
		Cluster:  l.Cluster,
	}
}

// CategoryKey returns the inferred label for a community of either
// kind (CatUnknown when excluded or unobserved).
func (r *Result) CategoryKey(k CommunityKey) Category {
	if k.Kind() == KindLarge {
		v := r.src.VerdictLarge(k.wireLarge())
		if !v.HasCluster {
			return fromDictCategory(dict.CatUnknown)
		}
		return fromDictCategory(v.Category)
	}
	return r.Category(Community{ASN: uint16(k.asn), Value: uint16(k.val)})
}

// LargeCounts returns the number of action and information inferences
// over large communities.
func (r *Result) LargeCounts() (action, information int) {
	return r.src.LargeCounts()
}

// LargeObservedCount returns how many distinct large communities the
// result covers (classified plus excluded).
func (r *Result) LargeObservedCount() int { return r.src.LargeObserved() }

// LargeExcludedCount returns how many observed large communities were
// deliberately left unclassified.
func (r *Result) LargeExcludedCount() int {
	action, information := r.src.LargeCounts()
	return r.src.LargeObserved() - action - information
}

// LargeClusterCount returns the number of inferred large clusters.
func (r *Result) LargeClusterCount() int { return r.src.LargeClusterCount() }

// LargeClusters returns every inferred large cluster, sorted by
// (ASN, Fn, Lo).
func (r *Result) LargeClusters() []LargeCluster {
	n := r.src.LargeClusterCount()
	out := make([]LargeCluster, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, largeClusterFromSummary(r.src.LargeClusterSummaryAt(i)))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ASN != out[j].ASN {
			return out[i].ASN < out[j].ASN
		}
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Lo < out[j].Lo
	})
	return out
}

// LabeledKey pairs a generalized community key with its inferred
// category.
type LabeledKey struct {
	Key      CommunityKey
	Category Category
}

// LabeledLarge returns every classified large community with its
// label, sorted by (ASN, Fn, Value).
func (r *Result) LabeledLarge() []LabeledKey {
	action, information := r.src.LargeCounts()
	out := make([]LabeledKey, 0, action+information)
	r.src.EachLargeLabeled(func(lc bgp.LargeCommunity, cat dict.Category) bool {
		out = append(out, LabeledKey{
			Key:      LargeKey(lc.GlobalAdmin, lc.LocalData1, lc.LocalData2),
			Category: fromDictCategory(cat),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Key, out[j].Key
		if a.asn != b.asn {
			return a.asn < b.asn
		}
		if a.fn != b.fn {
			return a.fn < b.fn
		}
		return a.val < b.val
	})
	return out
}

// SnapshotInfo is a snapshot's provenance and corpus counters.
type SnapshotInfo struct {
	Created time.Time
	Source  string // free-form, e.g. the input file globs

	Tuples           int
	Paths            int
	VantagePoints    int
	Communities      int
	LargeCommunities int
}

// SnapshotInfo captures the corpus counters for a snapshot written now
// from this corpus.
func (c *Corpus) SnapshotInfo(source string) SnapshotInfo {
	return SnapshotInfo{
		Created:          time.Now(),
		Source:           source,
		Tuples:           c.Tuples(),
		Paths:            c.Paths(),
		VantagePoints:    len(c.VantagePoints()),
		Communities:      len(c.Communities()),
		LargeCommunities: c.LargeCommunities(),
	}
}

func (si SnapshotInfo) meta() core.SnapshotMeta {
	return core.SnapshotMeta{
		CreatedUnix:      si.Created.Unix(),
		Source:           si.Source,
		Tuples:           si.Tuples,
		Paths:            si.Paths,
		VantagePoints:    si.VantagePoints,
		Communities:      si.Communities,
		LargeCommunities: si.LargeCommunities,
	}
}

func snapshotInfo(m core.SnapshotMeta) SnapshotInfo {
	return SnapshotInfo{
		Created:          time.Unix(m.CreatedUnix, 0).UTC(),
		Source:           m.Source,
		Tuples:           m.Tuples,
		Paths:            m.Paths,
		VantagePoints:    m.VantagePoints,
		Communities:      m.Communities,
		LargeCommunities: m.LargeCommunities,
	}
}

// WriteSnapshot serializes the result into the v1 gob snapshot format
// (see internal/core). The round trip ReadSnapshot(WriteSnapshot(r))
// preserves every label, cluster, exclusion, and Lookup verdict.
func (r *Result) WriteSnapshot(w io.Writer, info SnapshotInfo) error {
	return core.WriteSnapshot(w, r.inferences(), info.meta())
}

// WriteSnapshotV2 serializes the result into the flat, mmap-able v2
// snapshot layout that OpenSnapshotFile serves zero-copy. Verdicts are
// identical across formats; v2 additionally gives replicas O(1) cold
// start and shared page cache. v2 cannot represent large-community
// inferences: writing a result that has any fails with an error — use
// WriteSnapshotV3 or WriteSnapshotFlat for those.
func (r *Result) WriteSnapshotV2(w io.Writer, info SnapshotInfo) error {
	return core.WriteSnapshotV2(w, r.inferences(), info.meta())
}

// WriteSnapshotV3 serializes the result into the v3 flat layout: the
// v2 container plus the large-community sections. Valid for any
// result; classic-only results just carry empty large sections.
func (r *Result) WriteSnapshotV3(w io.Writer, info SnapshotInfo) error {
	return core.WriteSnapshotV3(w, r.inferences(), info.meta())
}

// WriteSnapshotFlat picks the cheapest flat layout that can represent
// the result: v2 for classic-only inferences (byte-identical to
// WriteSnapshotV2) and v3 when large inferences are present.
func (r *Result) WriteSnapshotFlat(w io.Writer, info SnapshotInfo) error {
	return core.WriteSnapshotFlat(w, r.inferences(), info.meta())
}

// ReadSnapshot loads a Result back from a snapshot of either format
// version, rebuilding the heap query index.
func ReadSnapshot(rd io.Reader) (*Result, SnapshotInfo, error) {
	inf, meta, err := core.ReadSnapshot(rd)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	return newResult(inf), snapshotInfo(meta), nil
}

// OpenSnapshotFile opens the snapshot at path in the cheapest mode its
// format allows: v2/v3 snapshots are memory-mapped and served zero-copy
// (O(1) cold start, page cache shared between replicas), v1 snapshots
// are decoded onto the heap. Close the Result to release a mapping.
func OpenSnapshotFile(path string) (*Result, SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	var magic [10]byte
	_, rerr := io.ReadFull(f, magic[:])
	f.Close()
	if rerr != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("snapshot: short header: %w", rerr)
	}
	if magic[9] == core.SnapshotVersionV2 || magic[9] == core.SnapshotVersionV3 {
		m, err := core.OpenSnapshotMmap(path)
		if err != nil {
			return nil, SnapshotInfo{}, err
		}
		return newMappedResult(m), snapshotInfo(m.Meta()), nil
	}
	f, err = os.Open(path)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// ReadSnapshotInfo reads only a snapshot's provenance/counter header,
// without decoding the inference body.
func ReadSnapshotInfo(rd io.Reader) (SnapshotInfo, error) {
	meta, err := core.ReadSnapshotMeta(rd)
	if err != nil {
		return SnapshotInfo{}, err
	}
	return snapshotInfo(meta), nil
}

// jsonInference mirrors one community in WriteJSON output. Kind is
// only rendered when the result covers large communities, so
// classic-only documents keep their original shape.
type jsonInference struct {
	Community string `json:"community"`
	Category  string `json:"category"`
	Kind      string `json:"kind,omitempty"`
}

// jsonCluster mirrors one cluster in WriteJSON output. The numeric
// fields are wide enough for large clusters; classic clusters render
// identically to the historical uint16 shape. Fn and Kind only appear
// when the result covers large communities.
type jsonCluster struct {
	ASN         uint32  `json:"asn"`
	Lo          uint32  `json:"lo"`
	Hi          uint32  `json:"hi"`
	Category    string  `json:"category"`
	Size        int     `json:"size"`
	OnPath      int     `json:"on_path"`
	OffPath     int     `json:"off_path"`
	PureOnPath  bool    `json:"pure_on_path"`
	PureOffPath bool    `json:"pure_off_path"`
	Ratio       float64 `json:"ratio"`
	Fn          *uint32 `json:"fn,omitempty"`
	Kind        string  `json:"kind,omitempty"`
}

// WriteJSON emits the full inference output — labels, clusters, and
// summary counts — as one JSON document. When the result covers large
// communities every inference and cluster carries a "kind" field
// (classic|large), large clusters additionally carry "fn", and the
// top-level large_* counters appear; classic-only documents are byte-
// identical to the historical output.
func (r *Result) WriteJSON(w io.Writer) error {
	action, info := r.Counts()
	largeAction, largeInfo := r.src.LargeCounts()
	withKinds := r.src.LargeObserved() > 0
	doc := struct {
		Action           int             `json:"action"`
		Information      int             `json:"information"`
		Excluded         int             `json:"excluded"`
		LargeAction      int             `json:"large_action,omitempty"`
		LargeInformation int             `json:"large_information,omitempty"`
		LargeExcluded    int             `json:"large_excluded,omitempty"`
		Inferences       []jsonInference `json:"inferences"`
		Clusters         []jsonCluster   `json:"clusters"`
	}{
		Action:           action,
		Information:      info,
		Excluded:         r.src.ExcludedCount(),
		LargeAction:      largeAction,
		LargeInformation: largeInfo,
		LargeExcluded:    r.LargeExcludedCount(),
		Inferences:       make([]jsonInference, 0, action+info+largeAction+largeInfo),
		Clusters:         make([]jsonCluster, 0, r.src.ClusterCount()+r.src.LargeClusterCount()),
	}
	kindOf := func(k CommunityKind) string {
		if !withKinds {
			return ""
		}
		return k.String()
	}
	for _, lc := range r.Labeled() {
		doc.Inferences = append(doc.Inferences, jsonInference{
			Community: lc.Community.String(), Category: lc.Category.String(),
			Kind: kindOf(KindClassic)})
	}
	for _, lk := range r.LabeledLarge() {
		doc.Inferences = append(doc.Inferences, jsonInference{
			Community: lk.Key.String(), Category: lk.Category.String(),
			Kind: kindOf(KindLarge)})
	}
	for _, cl := range r.Clusters() {
		doc.Clusters = append(doc.Clusters, jsonCluster{
			ASN: uint32(cl.ASN), Lo: uint32(cl.Lo), Hi: uint32(cl.Hi),
			Category: cl.Category.String(),
			Size:     cl.Size, OnPath: cl.OnPath, OffPath: cl.OffPath,
			PureOnPath: cl.PureOnPath, PureOffPath: cl.PureOffPath, Ratio: cl.Ratio,
			Kind: kindOf(KindClassic),
		})
	}
	for _, cl := range r.LargeClusters() {
		fn := cl.Fn
		doc.Clusters = append(doc.Clusters, jsonCluster{
			ASN: cl.ASN, Lo: cl.Lo, Hi: cl.Hi, Category: cl.Category.String(),
			Size: cl.Size, OnPath: cl.OnPath, OffPath: cl.OffPath,
			PureOnPath: cl.PureOnPath, PureOffPath: cl.PureOffPath, Ratio: cl.Ratio,
			Fn: &fn, Kind: kindOf(KindLarge),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&doc)
}

package bgpintent

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestGoldenV2Equivalence proves the flat mmap path is
// indistinguishable from the v1 heap path over the seed corpus: the
// committed v1 golden snapshot (a mixed corpus with classic and large
// inferences), converted to the flat layout — v3, since large
// inferences are present — and served through the zero-copy mapping,
// must produce byte-identical TSV/JSON renderings and identical
// verdicts for every community — classified, excluded, and unobserved,
// classic and large.
func TestGoldenV2Equivalence(t *testing.T) {
	f, err := os.Open("testdata/golden_synthetic.snap")
	if err != nil {
		t.Fatal(err)
	}
	heap, info, err := ReadSnapshot(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if heap.LargeObservedCount() == 0 {
		t.Fatal("mixed golden carries no large communities; v3 path untested")
	}

	// Convert to the flat layout and serve it through the mmap open
	// path. The golden has large inferences, so v2 must refuse and the
	// auto-select writer must pick v3.
	if err := heap.WriteSnapshotV2(io.Discard, info); err == nil {
		t.Fatal("WriteSnapshotV2 accepted a result with large inferences")
	}
	v2Path := filepath.Join(t.TempDir(), "golden.v3.snap")
	out, err := os.Create(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	if err := heap.WriteSnapshotFlat(out, info); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	mapped, mappedInfo, err := OpenSnapshotFile(v2Path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if !mapped.Mmapped() {
		t.Skip("platform lacks mmap; fallback path covered elsewhere")
	}
	if mappedInfo != info {
		t.Fatalf("snapshot info differs: %+v vs %+v", mappedInfo, info)
	}

	// Renderings must be byte-identical (and match the seed TSV golden).
	var heapTSV, mappedTSV bytes.Buffer
	if err := heap.WriteTSV(&heapTSV); err != nil {
		t.Fatal(err)
	}
	if err := mapped.WriteTSV(&mappedTSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(heapTSV.Bytes(), mappedTSV.Bytes()) {
		t.Fatal("TSV rendering differs between heap and mmap paths")
	}
	wantTSV, err := os.ReadFile("testdata/golden_synthetic.tsv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mappedTSV.Bytes(), wantTSV) {
		t.Fatal("mmap TSV differs from the seed golden")
	}
	var heapJSON, mappedJSON bytes.Buffer
	if err := heap.WriteJSON(&heapJSON); err != nil {
		t.Fatal(err)
	}
	if err := mapped.WriteJSON(&mappedJSON); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(heapJSON.Bytes(), mappedJSON.Bytes()) {
		t.Fatal("JSON rendering differs between heap and mmap paths")
	}

	// Every labeled community, every cluster listing, and the aggregate
	// counters agree.
	heapLabeled := heap.Labeled()
	mappedLabeled := mapped.Labeled()
	if len(heapLabeled) != len(mappedLabeled) {
		t.Fatalf("labeled counts differ: %d vs %d", len(heapLabeled), len(mappedLabeled))
	}
	for i := range heapLabeled {
		if heapLabeled[i] != mappedLabeled[i] {
			t.Fatalf("labeled[%d]: %+v vs %+v", i, heapLabeled[i], mappedLabeled[i])
		}
		a, b := heap.Lookup(heapLabeled[i].Community), mapped.Lookup(heapLabeled[i].Community)
		ac, bc := a.Cluster, b.Cluster
		a.Cluster, b.Cluster = nil, nil
		if a != b {
			t.Fatalf("Lookup(%v) differs: %+v vs %+v", heapLabeled[i].Community, a, b)
		}
		if (ac == nil) != (bc == nil) || (ac != nil && *ac != *bc) {
			t.Fatalf("Lookup(%v) cluster differs: %+v vs %+v", heapLabeled[i].Community, ac, bc)
		}
	}
	heapClusters := heap.Clusters()
	mappedClusters := mapped.Clusters()
	if len(heapClusters) != len(mappedClusters) {
		t.Fatalf("cluster counts differ: %d vs %d", len(heapClusters), len(mappedClusters))
	}
	for i := range heapClusters {
		if heapClusters[i] != mappedClusters[i] {
			t.Fatalf("cluster[%d]: %+v vs %+v", i, heapClusters[i], mappedClusters[i])
		}
		for _, cl := range [][]Cluster{heap.ClustersFor(heapClusters[i].ASN), mapped.ClustersFor(heapClusters[i].ASN)} {
			if len(cl) == 0 {
				t.Fatalf("ClustersFor(%d) empty for a known cluster ASN", heapClusters[i].ASN)
			}
		}
	}
	ha, hi := heap.Counts()
	ma, mi := mapped.Counts()
	if ha != ma || hi != mi || heap.ExcludedCount() != mapped.ExcludedCount() ||
		heap.ObservedCount() != mapped.ObservedCount() {
		t.Fatalf("counters differ: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			ha, hi, heap.ExcludedCount(), heap.ObservedCount(),
			ma, mi, mapped.ExcludedCount(), mapped.ObservedCount())
	}

	// Unobserved verdict parity.
	ghost := Comm(4242, 4242)
	if a, b := heap.Lookup(ghost), mapped.Lookup(ghost); a != b {
		t.Fatalf("unobserved Lookup differs: %+v vs %+v", a, b)
	}

	// Large-community parity: labels, clusters, per-key verdicts, and
	// counters must survive the v3 round trip exactly.
	heapLarge := heap.LabeledLarge()
	mappedLarge := mapped.LabeledLarge()
	if len(heapLarge) == 0 {
		t.Fatal("mixed golden has no labeled large communities")
	}
	if len(heapLarge) != len(mappedLarge) {
		t.Fatalf("labeled large counts differ: %d vs %d", len(heapLarge), len(mappedLarge))
	}
	for i := range heapLarge {
		if heapLarge[i] != mappedLarge[i] {
			t.Fatalf("labeled large[%d]: %+v vs %+v", i, heapLarge[i], mappedLarge[i])
		}
		a, b := heap.LookupKey(heapLarge[i].Key), mapped.LookupKey(heapLarge[i].Key)
		ac, bc := a.LargeCluster, b.LargeCluster
		a.LargeCluster, b.LargeCluster = nil, nil
		if a != b {
			t.Fatalf("LookupKey(%v) differs: %+v vs %+v", heapLarge[i].Key, a, b)
		}
		if (ac == nil) != (bc == nil) || (ac != nil && *ac != *bc) {
			t.Fatalf("LookupKey(%v) cluster differs: %+v vs %+v", heapLarge[i].Key, ac, bc)
		}
	}
	heapLC := heap.LargeClusters()
	mappedLC := mapped.LargeClusters()
	if len(heapLC) == 0 || len(heapLC) != len(mappedLC) {
		t.Fatalf("large cluster counts differ: %d vs %d", len(heapLC), len(mappedLC))
	}
	for i := range heapLC {
		if heapLC[i] != mappedLC[i] {
			t.Fatalf("large cluster[%d]: %+v vs %+v", i, heapLC[i], mappedLC[i])
		}
	}
	la, li := heap.LargeCounts()
	ma2, mi2 := mapped.LargeCounts()
	if la != ma2 || li != mi2 ||
		heap.LargeObservedCount() != mapped.LargeObservedCount() ||
		heap.LargeExcludedCount() != mapped.LargeExcludedCount() {
		t.Fatalf("large counters differ: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			la, li, heap.LargeObservedCount(), heap.LargeExcludedCount(),
			ma2, mi2, mapped.LargeObservedCount(), mapped.LargeExcludedCount())
	}
	ghostLarge := LargeKey(4242, 7, 4242)
	if a, b := heap.LookupKey(ghostLarge), mapped.LookupKey(ghostLarge); a != b {
		t.Fatalf("unobserved large LookupKey differs: %+v vs %+v", a, b)
	}
}

// TestOpenSnapshotFileV1Fallback: the opener serves v1 files through
// the heap path, transparently.
func TestOpenSnapshotFileV1Fallback(t *testing.T) {
	res, err := openGoldenCopy(t)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Mmapped() {
		t.Fatal("v1 snapshot claims to be mmapped")
	}
	var tsv bytes.Buffer
	if err := res.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/golden_synthetic.tsv")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tsv.Bytes(), want) {
		t.Fatal("v1 OpenSnapshotFile TSV differs from golden")
	}
}

// openGoldenCopy opens a copy of the v1 golden via OpenSnapshotFile
// (copied so a future regeneration cannot race the mmap).
func openGoldenCopy(t *testing.T) (*Result, error) {
	t.Helper()
	data, err := os.ReadFile("testdata/golden_synthetic.snap")
	if err != nil {
		return nil, err
	}
	path := filepath.Join(t.TempDir(), "golden.v1.snap")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return nil, err
	}
	res, info, err := OpenSnapshotFile(path)
	if err != nil {
		return nil, err
	}
	if info.Created.After(time.Now()) {
		t.Fatalf("golden created in the future: %v", info.Created)
	}
	return res, nil
}

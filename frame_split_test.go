package bgpintent

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// loadClassifyTSV loads the corpus with the given options and renders
// the classification as TSV — the byte-identity oracle.
func loadClassifyTSV(t *testing.T, ribs, updates []string, orgPath string, opts LoadOptions) ([]byte, LoadStats) {
	t.Helper()
	c, stats, err := LoadMRTCorpusOptions(ribs, updates, orgPath, opts)
	if err != nil {
		t.Fatalf("load (parallelism=%d, split=%v): %v", opts.Parallelism, opts.ForceFrameSplit, err)
	}
	res := c.Classify(Params{Parallelism: opts.Parallelism})
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), stats
}

// TestFrameSplitEquivalence forces the frame/decode split pipeline on
// at every worker count and demands byte-identical classification
// output and exactly equal LoadStats against the sequential load.
func TestFrameSplitEquivalence(t *testing.T) {
	ribs, updates, orgPath := writeParallelFixture(t)
	refTSV, refStats := loadClassifyTSV(t, ribs, updates, orgPath, LoadOptions{Parallelism: 1})
	if len(refTSV) == 0 || refStats.Records == 0 {
		t.Fatalf("degenerate reference: %d TSV bytes, %d records", len(refTSV), refStats.Records)
	}
	for _, workers := range []int{1, 2, 4, 8, 16} {
		tsv, stats := loadClassifyTSV(t, ribs, updates, orgPath,
			LoadOptions{Parallelism: workers, ForceFrameSplit: true})
		if stats != refStats {
			t.Errorf("split workers=%d: LoadStats = %+v, want %+v", workers, stats, refStats)
		}
		if !bytes.Equal(tsv, refTSV) {
			t.Errorf("split workers=%d: TSV differs (%d vs %d bytes)", workers, len(tsv), len(refTSV))
		}
	}
}

// TestFrameSplitSingleLargeFile concatenates every RIB file into ONE
// input file — the case the one-file-one-worker design could never
// parallelize — and checks the split pipeline still produces
// byte-identical output. The concatenation switches peer index tables
// mid-stream, exercising the framing barrier that keeps each batch
// paired with the table in force when it was framed.
func TestFrameSplitSingleLargeFile(t *testing.T) {
	ribs, updates, orgPath := writeParallelFixture(t)
	big := filepath.Join(t.TempDir(), "all.rib.mrt")
	out, err := os.Create(big)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range ribs {
		in, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(out, in); err != nil {
			t.Fatal(err)
		}
		in.Close()
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}

	bigRibs := []string{big}
	refTSV, refStats := loadClassifyTSV(t, bigRibs, updates, orgPath, LoadOptions{Parallelism: 1})
	for _, workers := range []int{8, 16} {
		// With one RIB file and several updates files, workers > files
		// activates the split naturally; force it anyway so the test
		// does not depend on the activation heuristic.
		tsv, stats := loadClassifyTSV(t, bigRibs, updates, orgPath,
			LoadOptions{Parallelism: workers, ForceFrameSplit: true})
		if stats != refStats {
			t.Errorf("split workers=%d: LoadStats = %+v, want %+v", workers, stats, refStats)
		}
		if !bytes.Equal(tsv, refTSV) {
			t.Errorf("split workers=%d: TSV differs (%d vs %d bytes)", workers, len(tsv), len(refTSV))
		}
	}
}

// Command mrtdump inspects MRT files (TABLE_DUMP_V2 and BGP4MP), in the
// spirit of bgpdump. Without -v it prints per-type record counts; with
// -v it prints one line per route.
//
// Decoding is lenient by default: undecodable records are skipped and
// corrupt framing is resynchronized over, and after all files a
// per-type skip summary is printed. The exit code is nonzero when any
// record could not be decoded. -strict restores fail-fast behavior with
// offset-bearing errors; -stats prints full framing statistics per
// file.
//
// Usage:
//
//	mrtdump [-v] [-strict] [-stats] file.mrt...
//	zcat rib.mrt.gz | mrtdump -v -
//
// "-" reads MRT from stdin; gzip and bzip2 streams are recognized by
// their magic bytes, so compressed archives pipe straight in.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"

	"bgpintent/internal/bgp"
	"bgpintent/internal/ingest"
	"bgpintent/internal/mrt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mrtdump: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

type options struct {
	verbose bool
	strict  bool
	stats   bool
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mrtdump", flag.ContinueOnError)
	var opts options
	fs.BoolVar(&opts.verbose, "v", false, "print each route")
	fs.BoolVar(&opts.strict, "strict", false, "fail on the first malformed record")
	fs.BoolVar(&opts.stats, "stats", false, "print framing statistics per file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: mrtdump [-v] [-strict] [-stats] file.mrt|-...")
	}
	totalBad := 0
	for _, path := range fs.Args() {
		bad, err := dump(stdout, path, opts)
		if err != nil {
			return err
		}
		totalBad += bad
	}
	if totalBad > 0 {
		return fmt.Errorf("%d undecodable records skipped", totalBad)
	}
	return nil
}

// stdin is swapped by tests.
var stdin io.Reader = os.Stdin

// dump prints one file ("-" means stdin, with gzip/bzip2 sniffed from
// the magic bytes) and returns how many records failed to decode.
func dump(stdout io.Writer, path string, opts options) (int, error) {
	var f io.Reader
	if path == "-" {
		r, err := ingest.OpenReader(stdin)
		if err != nil {
			return 0, fmt.Errorf("stdin: %w", err)
		}
		f, path = r, "stdin"
	} else {
		rc, err := ingest.Open(path)
		if err != nil {
			return 0, err
		}
		defer rc.Close()
		f = rc
	}

	var stats mrt.Stats
	var r *mrt.Reader
	if opts.strict {
		r = mrt.NewReader(f)
	} else {
		r = mrt.NewLenientReader(f, &stats)
	}
	counts := make(map[string]int)
	skips := make(map[string]int)
	var peers *mrt.PeerIndexTable
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("%s: %w", path, err)
		}
		key, derr := dumpRecord(stdout, rec, &peers, opts.verbose)
		counts[key]++
		if derr != nil {
			if opts.strict {
				return 0, fmt.Errorf("%s: record at offset %d: %w", path, rec.Offset, derr)
			}
			skips[key]++
			r.Reject(rec) // undecodable bodies may hide misframed records
		}
	}

	fmt.Fprintf(stdout, "%s:\n", path)
	for _, k := range sortedKeys(counts) {
		fmt.Fprintf(stdout, "  %-40s %d\n", k, counts[k])
	}
	bad := 0
	if len(skips) > 0 {
		fmt.Fprintf(stdout, "  skipped undecodable records:\n")
		for _, k := range sortedKeys(skips) {
			fmt.Fprintf(stdout, "    %-38s %d\n", k, skips[k])
			bad += skips[k]
		}
	}
	if opts.stats {
		fmt.Fprintf(stdout, "  framing: %d records, %d bytes read, %d resyncs, %d bytes skipped, %d truncated tails\n",
			stats.Records, stats.BytesRead, stats.Resyncs, stats.BytesSkipped, stats.Truncated)
	}
	return bad + stats.Resyncs + stats.Truncated, nil
}

// dumpRecord decodes (and under -v prints) one record, returning its
// per-type counter key and any decode error.
func dumpRecord(stdout io.Writer, rec *mrt.Record, peers **mrt.PeerIndexTable, verbose bool) (string, error) {
	switch {
	case rec.Type == mrt.TypeTableDumpV2 && rec.Subtype == mrt.SubtypePeerIndexTable:
		key := "TABLE_DUMP_V2/PEER_INDEX_TABLE"
		t, err := mrt.ParsePeerIndexTable(rec.Body)
		if err != nil {
			return key, err
		}
		*peers = t
		if verbose {
			fmt.Fprintf(stdout, "PEER_INDEX_TABLE collector=%v view=%q peers=%d\n",
				t.CollectorBGPID, t.ViewName, len(t.Peers))
		}
		return key, nil
	case rec.Type == mrt.TypeTableDumpV2 &&
		(rec.Subtype == mrt.SubtypeRIBIPv4Unicast || rec.Subtype == mrt.SubtypeRIBIPv6Unicast):
		key := "TABLE_DUMP_V2/RIB"
		rib, err := mrt.ParseRIB(rec.Subtype, rec.Body)
		if err != nil {
			return key, err
		}
		if verbose {
			for _, e := range rib.Entries {
				peerASN := uint32(0)
				if *peers != nil && int(e.PeerIndex) < len((*peers).Peers) {
					peerASN = (*peers).Peers[e.PeerIndex].ASN
				}
				fmt.Fprintf(stdout, "RIB %v peer=AS%d path=[%s] comms=[%s]\n",
					rib.Prefix, peerASN, e.Attrs.ASPath, e.Attrs.Communities)
			}
		}
		return key, nil
	case rec.Type == mrt.TypeBGP4MP || rec.Type == mrt.TypeBGP4MPET:
		key := "BGP4MP"
		if rec.Subtype != mrt.SubtypeBGP4MPMessageAS4 {
			return key, nil
		}
		m, err := mrt.ParseBGP4MP(rec.Body)
		if err != nil {
			return key, err
		}
		if verbose {
			fmt.Fprintf(stdout, "UPDATE t=%d peer=AS%d %s\n", rec.Timestamp, m.PeerAS, summarizeBGP(m.Message))
		}
		return key, nil
	default:
		return fmt.Sprintf("type=%d/subtype=%d", rec.Type, rec.Subtype), nil
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func summarizeBGP(wire []byte) string {
	upd, err := bgp.DecodeUpdate(wire)
	if err != nil {
		return fmt.Sprintf("(%v)", err)
	}
	out := ""
	if len(upd.Withdrawn) > 0 {
		out += fmt.Sprintf("withdraw=%v ", upd.Withdrawn)
	}
	if len(upd.NLRI) > 0 {
		out += fmt.Sprintf("announce=%v path=[%s] comms=[%s]",
			upd.NLRI, upd.Attrs.ASPath, upd.Attrs.Communities)
	}
	return out
}

// Command mrtdump inspects MRT files (TABLE_DUMP_V2 and BGP4MP), in the
// spirit of bgpdump. Without -v it prints per-type record counts; with
// -v it prints one line per route.
//
// Usage:
//
//	mrtdump [-v] file.mrt...
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"bgpintent/internal/bgp"
	"bgpintent/internal/mrt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mrtdump: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("mrtdump", flag.ContinueOnError)
	verbose := fs.Bool("v", false, "print each route")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("usage: mrtdump [-v] file.mrt...")
	}
	for _, path := range fs.Args() {
		if err := dump(stdout, path, *verbose); err != nil {
			return err
		}
	}
	return nil
}

func dump(stdout io.Writer, path string, verbose bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	counts := make(map[string]int)
	r := mrt.NewReader(f)
	var peers *mrt.PeerIndexTable
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		switch {
		case rec.Type == mrt.TypeTableDumpV2 && rec.Subtype == mrt.SubtypePeerIndexTable:
			counts["TABLE_DUMP_V2/PEER_INDEX_TABLE"]++
			peers, err = mrt.ParsePeerIndexTable(rec.Body)
			if err != nil {
				return err
			}
			if verbose {
				fmt.Fprintf(stdout, "PEER_INDEX_TABLE collector=%v view=%q peers=%d\n",
					peers.CollectorBGPID, peers.ViewName, len(peers.Peers))
			}
		case rec.Type == mrt.TypeTableDumpV2 &&
			(rec.Subtype == mrt.SubtypeRIBIPv4Unicast || rec.Subtype == mrt.SubtypeRIBIPv6Unicast):
			counts["TABLE_DUMP_V2/RIB"]++
			if !verbose {
				continue
			}
			rib, err := mrt.ParseRIB(rec.Subtype, rec.Body)
			if err != nil {
				return err
			}
			for _, e := range rib.Entries {
				peerASN := uint32(0)
				if peers != nil && int(e.PeerIndex) < len(peers.Peers) {
					peerASN = peers.Peers[e.PeerIndex].ASN
				}
				fmt.Fprintf(stdout, "RIB %v peer=AS%d path=[%s] comms=[%s]\n",
					rib.Prefix, peerASN, e.Attrs.ASPath, e.Attrs.Communities)
			}
		case rec.Type == mrt.TypeBGP4MP || rec.Type == mrt.TypeBGP4MPET:
			counts["BGP4MP"]++
			if !verbose || rec.Subtype != mrt.SubtypeBGP4MPMessageAS4 {
				continue
			}
			m, err := mrt.ParseBGP4MP(rec.Body)
			if err != nil {
				return err
			}
			fmt.Fprintf(stdout, "UPDATE t=%d peer=AS%d %s\n", rec.Timestamp, m.PeerAS, summarizeBGP(m.Message))
		default:
			counts[fmt.Sprintf("type=%d/subtype=%d", rec.Type, rec.Subtype)]++
		}
	}
	fmt.Fprintf(stdout, "%s:\n", path)
	for k, v := range counts {
		fmt.Fprintf(stdout, "  %-40s %d\n", k, v)
	}
	return nil
}

func summarizeBGP(wire []byte) string {
	upd, err := bgp.DecodeUpdate(wire)
	if err != nil {
		return fmt.Sprintf("(%v)", err)
	}
	out := ""
	if len(upd.Withdrawn) > 0 {
		out += fmt.Sprintf("withdraw=%v ", upd.Withdrawn)
	}
	if len(upd.NLRI) > 0 {
		out += fmt.Sprintf("announce=%v path=[%s] comms=[%s]",
			upd.NLRI, upd.Attrs.ASPath, upd.Attrs.Communities)
	}
	return out
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgpintent/internal/corpus"
)

func writeRIBFile(t *testing.T) string {
	t.Helper()
	cfg := corpus.TinyConfig()
	cfg.Days = 0
	c, err := corpus.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Sim.RunDay(0)
	path := filepath.Join(t.TempDir(), "test.rib.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Sim.WriteRIB(f, 1714521600, 0, res); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestRunSummary(t *testing.T) {
	path := writeRIBFile(t)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "TABLE_DUMP_V2/PEER_INDEX_TABLE") || !strings.Contains(s, "TABLE_DUMP_V2/RIB") {
		t.Errorf("summary output = %q", s)
	}
}

func TestRunVerbose(t *testing.T) {
	path := writeRIBFile(t)
	var out bytes.Buffer
	if err := run([]string{"-v", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "PEER_INDEX_TABLE collector=") || !strings.Contains(s, "RIB ") {
		t.Errorf("verbose output missing route lines: %.200q", s)
	}
	if !strings.Contains(s, "path=[") {
		t.Error("verbose output missing AS paths")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"/nonexistent.mrt"}, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
}

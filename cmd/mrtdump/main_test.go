package main

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgpintent/internal/corpus"
)

func writeRIBFile(t *testing.T) string {
	t.Helper()
	cfg := corpus.TinyConfig()
	cfg.Days = 0
	c, err := corpus.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Sim.RunDay(0)
	path := filepath.Join(t.TempDir(), "test.rib.mrt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Sim.WriteRIB(f, 1714521600, 0, res); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

func TestRunSummary(t *testing.T) {
	path := writeRIBFile(t)
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "TABLE_DUMP_V2/PEER_INDEX_TABLE") || !strings.Contains(s, "TABLE_DUMP_V2/RIB") {
		t.Errorf("summary output = %q", s)
	}
}

func TestRunVerbose(t *testing.T) {
	path := writeRIBFile(t)
	var out bytes.Buffer
	if err := run([]string{"-v", path}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "PEER_INDEX_TABLE collector=") || !strings.Contains(s, "RIB ") {
		t.Errorf("verbose output missing route lines: %.200q", s)
	}
	if !strings.Contains(s, "path=[") {
		t.Error("verbose output missing AS paths")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"/nonexistent.mrt"}, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
}

// corruptRIBFile clips the file mid-record and wrecks one record body,
// producing both a framing failure and a decode failure.
func corruptRIBFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// First record is the peer table; stomp on the body of the second.
	l0 := int(data[8])<<24 | int(data[9])<<16 | int(data[10])<<8 | int(data[11])
	body2 := 12 + l0 + 12
	for i := body2 + 4; i < body2+12 && i < len(data); i++ {
		data[i] = 0xff
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunLenientCorrupt(t *testing.T) {
	path := writeRIBFile(t)
	corruptRIBFile(t, path)
	var out bytes.Buffer
	err := run([]string{"-stats", path}, &out)
	if err == nil {
		t.Fatal("corrupted file exited cleanly")
	}
	if !strings.Contains(err.Error(), "undecodable") {
		t.Errorf("error = %v, want undecodable-records summary", err)
	}
	s := out.String()
	if !strings.Contains(s, "skipped undecodable records:") {
		t.Errorf("output missing skip summary: %q", s)
	}
	if !strings.Contains(s, "framing:") {
		t.Errorf("-stats output missing framing line: %q", s)
	}
	// The salvageable records still get counted.
	if !strings.Contains(s, "TABLE_DUMP_V2/RIB") {
		t.Errorf("output lost the per-type counts: %q", s)
	}
}

func TestRunStrictCorrupt(t *testing.T) {
	path := writeRIBFile(t)
	corruptRIBFile(t, path)
	var out bytes.Buffer
	err := run([]string{"-strict", path}, &out)
	if err == nil {
		t.Fatal("-strict accepted a corrupted file")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("strict error %q carries no byte offset", err)
	}
}

// TestRunStdin pipes plain and gzipped MRT through "-" and expects the
// same summary as reading the file directly.
func TestRunStdin(t *testing.T) {
	path := writeRIBFile(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var gzBuf bytes.Buffer
	zw := gzip.NewWriter(&gzBuf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	for name, data := range map[string][]byte{"plain": raw, "gzip": gzBuf.Bytes()} {
		oldStdin := stdin
		stdin = bytes.NewReader(data)
		var out bytes.Buffer
		err := run([]string{"-"}, &out)
		stdin = oldStdin
		if err != nil {
			t.Fatalf("%s via stdin: %v", name, err)
		}
		s := out.String()
		if !strings.Contains(s, "stdin:") || !strings.Contains(s, "TABLE_DUMP_V2/RIB") {
			t.Errorf("%s via stdin: output = %q", name, s)
		}
	}
}

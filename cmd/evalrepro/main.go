// Command evalrepro regenerates the paper's tables and figures over a
// synthetic corpus (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	evalrepro [-exp all|headline|fig4|fig6|fig7|fig9|fig10|days|months|tab1|ablation|seeds|fine|faults]
//	          [-scale tiny|default] [-seed N] [-days N] [-trials N] [-months N]
//	          [-parallelism N] [-progress] [-trace-json events.jsonl]
//	          [-cpuprofile cpu.pb] [-memprofile mem.pb]
//
// -progress prints a per-experiment timing line to stderr as each
// experiment completes; -trace-json streams the same spans as JSON
// lines ("-" for stderr). Each experiment is one span with stage
// "experiment" and its id as the label.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"bgpintent/internal/corpus"
	"bgpintent/internal/eval"
	"bgpintent/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evalrepro: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("evalrepro", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment id(s), comma separated, or 'all'")
		scale    = fs.String("scale", "default", "corpus scale: tiny, default or large")
		seed     = fs.Int64("seed", 1, "corpus seed")
		days     = fs.Int("days", 7, "days of data for corpus experiments")
		trials   = fs.Int("trials", 50, "trials for the vantage-point experiment")
		months   = fs.Int("months", 12, "months for the longitudinal experiment")
		par      = fs.Int("parallelism", 0, "classifier workers (0 = one per CPU, 1 = sequential)")
		progress = fs.Bool("progress", false, "print per-experiment timings to stderr")
		traceOut = fs.String("trace-json", "", "stream experiment spans as JSON lines to this file (\"-\" for stderr)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sinks []obs.Observer
	if *progress {
		sinks = append(sinks, obs.NewProgressPrinter(os.Stderr))
	}
	if *traceOut != "" {
		w := io.Writer(os.Stderr)
		if *traceOut != "-" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		sinks = append(sinks, obs.NewJSONTracer(w))
	}
	var observer obs.Observer
	if len(sinks) > 0 {
		observer = obs.Multi(sinks...)
	}
	// step wraps one experiment in an "experiment" span labeled with its
	// id, so -progress/-trace-json attribute wall time per experiment.
	step := func(id string, f func() error) error {
		return obs.Time(context.Background(), observer, obs.Stage("experiment"), id, nil,
			func(context.Context) error { return f() })
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	cfg := corpus.DefaultConfig()
	switch *scale {
	case "tiny":
		cfg = corpus.TinyConfig()
	case "large":
		cfg.Scale = corpus.ScaleLarge
	case "default":
	default:
		return fmt.Errorf("unknown -scale %q", *scale)
	}
	cfg.Seed = *seed
	cfg.Days = *days
	cfg.Workers = *par

	wanted := strings.Split(*exp, ",")
	known := map[string]bool{
		"all": true, "headline": true, "fig4": true, "fig6": true, "fig7": true,
		"fig9": true, "fig10": true, "days": true, "months": true, "tab1": true,
		"ablation": true, "seeds": true, "fine": true, "faults": true,
	}
	for _, w := range wanted {
		if !known[w] {
			return fmt.Errorf("unknown experiment %q", w)
		}
	}
	want := func(id string) bool {
		for _, w := range wanted {
			if w == "all" || w == id {
				return true
			}
		}
		return false
	}

	// Experiments sharing one corpus.
	needCorpus := false
	for _, id := range []string{"headline", "fig4", "fig6", "fig7", "fig9", "fig10", "tab1", "ablation", "fine"} {
		if want(id) {
			needCorpus = true
		}
	}
	var c *corpus.Corpus
	if needCorpus {
		fmt.Fprintf(stdout, "building corpus (scale=%s seed=%d days=%d)...\n", *scale, *seed, *days)
		err := step("corpus", func() error {
			var err error
			c, err = corpus.Build(cfg)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "corpus: %d tuples, %d paths, %d communities, %d VPs\n\n",
			c.Store.Len(), c.Store.PathCount(), len(c.Store.Communities()), len(c.Store.VPSet()))
	}

	// Experiments over the shared corpus render synchronously.
	renders := []struct {
		id     string
		render func() string
	}{
		{"headline", func() string { return eval.Headline(c).Render() }},
		{"fig4", func() string { return eval.Fig4(c).Render() }},
		{"fig6", func() string { return eval.Fig6(c).Render() }},
		{"fig7", func() string { return eval.Fig7(c).Render() }},
		{"fig9", func() string { return eval.Fig9(c, nil).Render() }},
		{"fig10", func() string { return eval.Fig10(c, nil, *trials, *seed).Render() }},
		{"tab1", func() string { return eval.Table1(c).Render() }},
		{"ablation", func() string { return eval.Ablations(c).Render() }},
		{"fine", func() string { return eval.FineGrained(c).Render() }},
	}
	for _, r := range renders {
		if !want(r.id) {
			continue
		}
		if err := step(r.id, func() error { fmt.Fprintln(stdout, r.render()); return nil }); err != nil {
			return err
		}
	}

	// Sweeps build their own corpora.
	sweeps := []struct {
		id  string
		run func() (interface{ Render() string }, error)
	}{
		{"days", func() (interface{ Render() string }, error) { return eval.DaysSweep(cfg, *days) }},
		{"months", func() (interface{ Render() string }, error) { return eval.MonthsSweep(cfg, *months) }},
		{"faults", func() (interface{ Render() string }, error) { return eval.FaultTolerance(cfg, nil) }},
		{"seeds", func() (interface{ Render() string }, error) {
			scfg := cfg
			scfg.Days = 1
			return eval.SeedSweep(scfg, nil)
		}},
	}
	for _, s := range sweeps {
		if !want(s.id) {
			continue
		}
		err := step(s.id, func() error {
			r, err := s.run()
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, r.Render())
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Command evalrepro regenerates the paper's tables and figures over a
// synthetic corpus (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	evalrepro [-exp all|headline|fig4|fig6|fig7|fig9|fig10|days|months|tab1|ablation|seeds|fine|faults]
//	          [-scale tiny|default] [-seed N] [-days N] [-trials N] [-months N]
//	          [-parallelism N] [-cpuprofile cpu.pb] [-memprofile mem.pb]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"bgpintent/internal/corpus"
	"bgpintent/internal/eval"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("evalrepro: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("evalrepro", flag.ContinueOnError)
	var (
		exp     = fs.String("exp", "all", "experiment id(s), comma separated, or 'all'")
		scale   = fs.String("scale", "default", "corpus scale: tiny, default or large")
		seed    = fs.Int64("seed", 1, "corpus seed")
		days    = fs.Int("days", 7, "days of data for corpus experiments")
		trials  = fs.Int("trials", 50, "trials for the vantage-point experiment")
		months  = fs.Int("months", 12, "months for the longitudinal experiment")
		par     = fs.Int("parallelism", 0, "classifier workers (0 = one per CPU, 1 = sequential)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	cfg := corpus.DefaultConfig()
	switch *scale {
	case "tiny":
		cfg = corpus.TinyConfig()
	case "large":
		cfg.Scale = corpus.ScaleLarge
	case "default":
	default:
		return fmt.Errorf("unknown -scale %q", *scale)
	}
	cfg.Seed = *seed
	cfg.Days = *days
	cfg.Workers = *par

	wanted := strings.Split(*exp, ",")
	known := map[string]bool{
		"all": true, "headline": true, "fig4": true, "fig6": true, "fig7": true,
		"fig9": true, "fig10": true, "days": true, "months": true, "tab1": true,
		"ablation": true, "seeds": true, "fine": true, "faults": true,
	}
	for _, w := range wanted {
		if !known[w] {
			return fmt.Errorf("unknown experiment %q", w)
		}
	}
	want := func(id string) bool {
		for _, w := range wanted {
			if w == "all" || w == id {
				return true
			}
		}
		return false
	}

	// Experiments sharing one corpus.
	needCorpus := false
	for _, id := range []string{"headline", "fig4", "fig6", "fig7", "fig9", "fig10", "tab1", "ablation", "fine"} {
		if want(id) {
			needCorpus = true
		}
	}
	var c *corpus.Corpus
	if needCorpus {
		var err error
		fmt.Fprintf(stdout, "building corpus (scale=%s seed=%d days=%d)...\n", *scale, *seed, *days)
		c, err = corpus.Build(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "corpus: %d tuples, %d paths, %d communities, %d VPs\n\n",
			c.Store.Len(), c.Store.PathCount(), len(c.Store.Communities()), len(c.Store.VPSet()))
	}

	if want("headline") {
		fmt.Fprintln(stdout, eval.Headline(c).Render())
	}
	if want("fig4") {
		fmt.Fprintln(stdout, eval.Fig4(c).Render())
	}
	if want("fig6") {
		fmt.Fprintln(stdout, eval.Fig6(c).Render())
	}
	if want("fig7") {
		fmt.Fprintln(stdout, eval.Fig7(c).Render())
	}
	if want("fig9") {
		fmt.Fprintln(stdout, eval.Fig9(c, nil).Render())
	}
	if want("fig10") {
		fmt.Fprintln(stdout, eval.Fig10(c, nil, *trials, *seed).Render())
	}
	if want("tab1") {
		fmt.Fprintln(stdout, eval.Table1(c).Render())
	}
	if want("ablation") {
		fmt.Fprintln(stdout, eval.Ablations(c).Render())
	}
	if want("fine") {
		fmt.Fprintln(stdout, eval.FineGrained(c).Render())
	}
	if want("days") {
		r, err := eval.DaysSweep(cfg, *days)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Render())
	}
	if want("months") {
		r, err := eval.MonthsSweep(cfg, *months)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Render())
	}
	if want("faults") {
		r, err := eval.FaultTolerance(cfg, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Render())
	}
	if want("seeds") {
		scfg := cfg
		scfg.Days = 1
		r, err := eval.SeedSweep(scfg, nil)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, r.Render())
	}
	return nil
}

package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunHeadlineTiny(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "headline", "-scale", "tiny", "-days", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== headline:") || !strings.Contains(s, "accuracy=") {
		t.Errorf("output = %q", s)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "fig6,fig9", "-scale", "tiny", "-days", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== fig6:") || !strings.Contains(s, "== fig9:") {
		t.Errorf("missing experiment sections in %q", s)
	}
	if strings.Contains(s, "== headline:") {
		t.Error("ran an unrequested experiment")
	}
}

func TestRunFaultsTiny(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "faults", "-scale", "tiny"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "== faults:") || !strings.Contains(s, "salvaged-tuples=") {
		t.Errorf("faults output = %q", s)
	}
	if strings.Contains(s, "building corpus") {
		t.Error("faults experiment built the shared corpus it does not use")
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-exp", "nonsense"}, &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

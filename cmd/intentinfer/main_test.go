package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgpintent"
	"bgpintent/internal/corpus"
)

// writeTestCorpus emits one day of tiny-scale MRT files plus as2org.
func writeTestCorpus(t *testing.T, dir string) {
	t.Helper()
	cfg := corpus.TinyConfig()
	cfg.Days = 0
	c, err := corpus.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Sim.RunDay(0)
	for col := 0; col < c.Sim.Collectors(); col++ {
		f, err := os.Create(filepath.Join(dir, "rc"+string(rune('0'+col))+".rib.mrt"))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Sim.WriteRIB(f, 1714521600, col, res); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	f, err := os.Create(filepath.Join(dir, "as2org.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Orgs.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeTestCorpus(t, dir)
	outTSV := filepath.Join(dir, "out.tsv")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-rib", filepath.Join(dir, "*.rib.mrt"),
		"-as2org", filepath.Join(dir, "as2org.txt"),
		"-o", outTSV,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "classified") {
		t.Errorf("output = %q", out.String())
	}
	data, err := os.ReadFile(outTSV)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Errorf("TSV has only %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "\t") {
		t.Errorf("bad TSV line %q", lines[0])
	}
}

func TestRunNoInputs(t *testing.T) {
	if err := run(context.Background(), nil, &bytes.Buffer{}); err == nil {
		t.Error("no inputs accepted")
	}
}

// corruptFile clips the file mid-record so strict decoding fails while
// lenient decoding salvages everything before the cut.
func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRunLenientVsStrict(t *testing.T) {
	dir := t.TempDir()
	writeTestCorpus(t, dir)
	corruptFile(t, filepath.Join(dir, "rc0.rib.mrt"))
	args := []string{
		"-rib", filepath.Join(dir, "*.rib.mrt"),
		"-as2org", filepath.Join(dir, "as2org.txt"),
	}

	var out bytes.Buffer
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatalf("lenient run over a truncated file failed: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "ingest:") || !strings.Contains(s, "truncated") {
		t.Errorf("output does not report the truncated tail: %q", s)
	}
	if !strings.Contains(s, "classified") {
		t.Errorf("lenient run did not classify: %q", s)
	}

	err := run(context.Background(), append([]string{"-strict"}, args...), &bytes.Buffer{})
	if err == nil {
		t.Fatal("-strict accepted a truncated file")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("strict error %q carries no byte offset", err)
	}
}

func TestRunMaxErrorRate(t *testing.T) {
	dir := t.TempDir()
	writeTestCorpus(t, dir)
	// A pure-garbage "rib" file has corruption rate 1.0.
	garbage := filepath.Join(dir, "zz.rib.mrt")
	if err := os.WriteFile(garbage, bytes.Repeat([]byte("not mrt "), 64), 0o644); err != nil {
		t.Fatal(err)
	}
	args := []string{
		"-rib", filepath.Join(dir, "*.rib.mrt"),
		"-as2org", filepath.Join(dir, "as2org.txt"),
	}

	err := run(context.Background(), args, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "error budget") {
		t.Fatalf("default budget let a garbage file through: %v", err)
	}

	var out bytes.Buffer
	if err := run(context.Background(), append([]string{"-max-error-rate", "-1"}, args...), &out); err != nil {
		t.Fatalf("disabled budget still failed: %v", err)
	}
	if !strings.Contains(out.String(), "classified") {
		t.Errorf("output = %q", out.String())
	}
}

func TestWriteTSVAtomicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	writeTestCorpus(t, dir)
	outTSV := filepath.Join(dir, "out.tsv")
	err := run(context.Background(), []string{
		"-rib", filepath.Join(dir, "*.rib.mrt"),
		"-as2org", filepath.Join(dir, "as2org.txt"),
		"-o", outTSV,
	}, &bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(outTSV); err != nil {
		t.Errorf("output TSV missing: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}

	// Writing into a nonexistent directory fails up front and leaves
	// nothing behind.
	if err := writeAtomic(filepath.Join(dir, "nope", "out.tsv"), nil); err == nil {
		t.Error("atomic write into a missing directory succeeded")
	}
}

// TestFormatRoundTrip is the snapshot contract: classify → write
// snapshot → load → byte-identical WriteTSV, and -format json emits
// parseable JSON agreeing with the TSV.
func TestFormatRoundTrip(t *testing.T) {
	dir := t.TempDir()
	writeTestCorpus(t, dir)
	args := func(format, out string) []string {
		return []string{
			"-rib", filepath.Join(dir, "*.rib.mrt"),
			"-as2org", filepath.Join(dir, "as2org.txt"),
			"-format", format,
			"-o", out,
		}
	}

	outTSV := filepath.Join(dir, "out.tsv")
	if err := run(context.Background(), args("tsv", outTSV), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	wantTSV, err := os.ReadFile(outTSV)
	if err != nil {
		t.Fatal(err)
	}

	outSnap := filepath.Join(dir, "out.snap")
	if err := run(context.Background(), args("snapshot", outSnap), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(outSnap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, info, err := bgpintent.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if info.Tuples == 0 || info.Paths == 0 || !strings.Contains(info.Source, "*.rib.mrt") {
		t.Errorf("snapshot info = %+v", info)
	}
	var gotTSV bytes.Buffer
	if err := res.WriteTSV(&gotTSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotTSV.Bytes(), wantTSV) {
		t.Fatalf("TSV after snapshot round trip differs:\ngot %d bytes\nwant %d bytes",
			gotTSV.Len(), len(wantTSV))
	}

	outJSON := filepath.Join(dir, "out.json")
	if err := run(context.Background(), args("json", outJSON), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outJSON)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Action           int `json:"action"`
		Information      int `json:"information"`
		LargeAction      int `json:"large_action"`
		LargeInformation int `json:"large_information"`
		Inferences       []struct {
			Community string `json:"community"`
			Category  string `json:"category"`
			Kind      string `json:"kind"`
		} `json:"inferences"`
		Clusters []struct {
			ASN uint32 `json:"asn"`
		} `json:"clusters"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-format json output is not JSON: %v", err)
	}
	tsvLines := strings.Split(strings.TrimSpace(string(wantTSV)), "\n")
	labeled := doc.Action + doc.Information + doc.LargeAction + doc.LargeInformation
	if len(doc.Inferences) != len(tsvLines) || labeled != len(tsvLines) {
		t.Errorf("json has %d inferences (action %d + information %d + large %d+%d), TSV has %d lines",
			len(doc.Inferences), doc.Action, doc.Information,
			doc.LargeAction, doc.LargeInformation, len(tsvLines))
	}
	if len(doc.Clusters) == 0 {
		t.Error("json carries no clusters")
	}

	if err := run(context.Background(), args("yaml", filepath.Join(dir, "x")), &bytes.Buffer{}); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestTraceJSONStream runs the pipeline with -progress and -trace-json
// and checks three contracts: every trace line is a well-formed JSON
// event, every pipeline stage reports a stage_end, the stream ends with
// a final progress event — and the observed run's TSV is byte-identical
// to an unobserved one.
func TestTraceJSONStream(t *testing.T) {
	dir := t.TempDir()
	writeTestCorpus(t, dir)
	args := func(extra ...string) []string {
		return append([]string{
			"-rib", filepath.Join(dir, "*.rib.mrt"),
			"-as2org", filepath.Join(dir, "as2org.txt"),
		}, extra...)
	}

	plainTSV := filepath.Join(dir, "plain.tsv")
	if err := run(context.Background(), args("-o", plainTSV), &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	trace := filepath.Join(dir, "trace.jsonl")
	obsTSV := filepath.Join(dir, "observed.tsv")
	var out bytes.Buffer
	err := run(context.Background(), args("-progress", "-trace-json", trace, "-o", obsTSV), &out)
	if err != nil {
		t.Fatal(err)
	}

	want, err := os.ReadFile(plainTSV)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(obsTSV)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("observed run produced a different TSV than an unobserved one")
	}

	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) == 0 {
		t.Fatal("empty trace stream")
	}
	ended := make(map[string]bool)
	var sawFinal bool
	for i, line := range lines {
		var ev struct {
			Event string `json:"event"`
			Stage string `json:"stage"`
			Final bool   `json:"final"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %d is not JSON: %q: %v", i+1, line, err)
		}
		switch ev.Event {
		case "stage_start", "stage_end", "progress":
		default:
			t.Errorf("trace line %d has unknown event %q", i+1, ev.Event)
		}
		if ev.Event == "stage_end" {
			ended[ev.Stage] = true
		}
		if ev.Event == "progress" && ev.Final {
			sawFinal = true
		}
	}
	for _, stage := range []string{
		"open", "decode", "store-add", "stitch",
		"observe", "cluster", "ratio", "classify", "snapshot-write",
	} {
		if !ended[stage] {
			t.Errorf("trace has no stage_end for %q", stage)
		}
	}
	if !sawFinal {
		t.Error("trace has no final progress event")
	}
}

func TestValidateRejectsBadRatio(t *testing.T) {
	dir := t.TempDir()
	writeTestCorpus(t, dir)
	err := run(context.Background(), []string{
		"-rib", filepath.Join(dir, "*.rib.mrt"),
		"-ratio", "0.5",
	}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "RatioThreshold") {
		t.Errorf("ratio 0.5 accepted: %v", err)
	}
}

func TestExpand(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.mrt", "b.mrt"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := expand(filepath.Join(dir, "*.mrt"))
	if err != nil || len(files) != 2 {
		t.Errorf("expand = %v, %v", files, err)
	}
	if _, err := expand(filepath.Join(dir, "*.nope")); err == nil {
		t.Error("empty glob accepted")
	}
	if files, err := expand(""); err != nil || files != nil {
		t.Errorf("empty pattern: %v %v", files, err)
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgpintent/internal/corpus"
)

// writeTestCorpus emits one day of tiny-scale MRT files plus as2org.
func writeTestCorpus(t *testing.T, dir string) {
	t.Helper()
	cfg := corpus.TinyConfig()
	cfg.Days = 0
	c, err := corpus.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := c.Sim.RunDay(0)
	for col := 0; col < c.Sim.Collectors(); col++ {
		f, err := os.Create(filepath.Join(dir, "rc"+string(rune('0'+col))+".rib.mrt"))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Sim.WriteRIB(f, 1714521600, col, res); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	f, err := os.Create(filepath.Join(dir, "as2org.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Orgs.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	writeTestCorpus(t, dir)
	outTSV := filepath.Join(dir, "out.tsv")
	var out bytes.Buffer
	err := run([]string{
		"-rib", filepath.Join(dir, "*.rib.mrt"),
		"-as2org", filepath.Join(dir, "as2org.txt"),
		"-o", outTSV,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "classified") {
		t.Errorf("output = %q", out.String())
	}
	data, err := os.ReadFile(outTSV)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Errorf("TSV has only %d lines", len(lines))
	}
	if !strings.Contains(lines[0], "\t") {
		t.Errorf("bad TSV line %q", lines[0])
	}
}

func TestRunNoInputs(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Error("no inputs accepted")
	}
}

func TestExpand(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"a.mrt", "b.mrt"} {
		if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := expand(filepath.Join(dir, "*.mrt"))
	if err != nil || len(files) != 2 {
		t.Errorf("expand = %v, %v", files, err)
	}
	if _, err := expand(filepath.Join(dir, "*.nope")); err == nil {
		t.Error("empty glob accepted")
	}
	if files, err := expand(""); err != nil || files != nil {
		t.Errorf("empty pattern: %v %v", files, err)
	}
}

// Command intentinfer classifies BGP communities as action or
// information from MRT data, implementing the paper's pipeline end to
// end. RIB and updates files may be given as globs.
//
// Loading is lenient by default: undecodable records are skipped,
// corrupt framing is resynchronized over, and the load aborts only when
// a file's corruption rate exceeds -max-error-rate. -strict restores
// fail-fast decoding.
//
// Usage:
//
//	intentinfer -rib 'corpus/*.rib.mrt' -updates 'corpus/*.updates.mrt' \
//	            -as2org corpus/as2org.txt [-gap 140] [-ratio 160] [-o out.tsv]
//	            [-format tsv|json|snapshot] [-strict] [-max-error-rate 0.05]
//	            [-parallelism N] [-cpuprofile cpu.pb] [-memprofile mem.pb]
//
// -format snapshot writes the binary artifact intentd -snapshot
// cold-starts from, skipping MRT re-ingestion entirely.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"bgpintent"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("intentinfer: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("intentinfer", flag.ContinueOnError)
	var (
		ribGlob = fs.String("rib", "", "glob of TABLE_DUMP_V2 RIB files")
		updGlob = fs.String("updates", "", "glob of BGP4MP updates files")
		as2org  = fs.String("as2org", "", "as2org file (asn|org lines)")
		gap     = fs.Int("gap", 140, "minimum gap between community clusters")
		ratio   = fs.Float64("ratio", 160, "on-path:off-path ratio threshold")
		outPath = fs.String("o", "", "write inferences to this file")
		format  = fs.String("format", "tsv", "output format: tsv, json, or snapshot (the binary artifact intentd -snapshot serves from)")
		strict  = fs.Bool("strict", false, "fail on the first malformed MRT record instead of skipping it")
		maxErr  = fs.Float64("max-error-rate", bgpintent.DefaultMaxErrorRate,
			"abort when a file's corruption rate exceeds this fraction (negative disables)")
		par     = fs.Int("parallelism", 0, "ingest/classifier workers (0 = one per CPU, 1 = sequential)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "tsv", "json", "snapshot":
	default:
		return fmt.Errorf("unknown -format %q (want tsv, json or snapshot)", *format)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	ribs, err := expand(*ribGlob)
	if err != nil {
		return err
	}
	updates, err := expand(*updGlob)
	if err != nil {
		return err
	}
	if len(ribs)+len(updates) == 0 {
		return fmt.Errorf("no input files; use -rib and/or -updates")
	}

	c, stats, err := bgpintent.LoadMRTCorpusOptions(ribs, updates, *as2org,
		bgpintent.LoadOptions{Strict: *strict, MaxErrorRate: *maxErr, Parallelism: *par})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ingest: %s\n", stats.Summary())
	fmt.Fprintf(stdout, "loaded %d unique tuples over %d unique AS paths from %d vantage points\n",
		c.Tuples(), c.Paths(), len(c.VantagePoints()))
	fmt.Fprintf(stdout, "observed %d distinct communities (+%d large, not classified)\n",
		len(c.Communities()), c.LargeCommunities())

	res := c.Classify(bgpintent.Params{MinGap: *gap, RatioThreshold: *ratio, Parallelism: *par})
	action, info := res.Counts()
	fmt.Fprintf(stdout, "classified %d communities: %d action, %d information\n", action+info, action, info)

	if *outPath != "" {
		var fill func(io.Writer) error
		switch *format {
		case "tsv":
			fill = res.WriteTSV
		case "json":
			fill = res.WriteJSON
		case "snapshot":
			info := c.SnapshotInfo(sourceLabel(*ribGlob, *updGlob))
			fill = func(w io.Writer) error { return res.WriteSnapshot(w, info) }
		}
		if err := writeAtomic(*outPath, fill); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s inferences to %s\n", *format, *outPath)
	}
	return nil
}

// sourceLabel records the input globs as snapshot provenance.
func sourceLabel(ribGlob, updGlob string) string {
	switch {
	case ribGlob != "" && updGlob != "":
		return ribGlob + " + " + updGlob
	case ribGlob != "":
		return ribGlob
	default:
		return updGlob
	}
}

// writeAtomic writes the output to a temporary file in the destination
// directory and renames it into place, so a mid-stream failure never
// leaves a half-written artifact behind.
func writeAtomic(path string, fill func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = fill(tmp); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func expand(glob string) ([]string, error) {
	if glob == "" {
		return nil, nil
	}
	files, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("bad glob %q: %v", glob, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("glob %q matched no files", glob)
	}
	return files, nil
}

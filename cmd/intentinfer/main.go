// Command intentinfer classifies BGP communities as action or
// information from MRT data, implementing the paper's pipeline end to
// end. RIB and updates files may be given as globs.
//
// Loading is lenient by default: undecodable records are skipped,
// corrupt framing is resynchronized over, and the load aborts only when
// a file's corruption rate exceeds -max-error-rate. -strict restores
// fail-fast decoding.
//
// Usage:
//
//	intentinfer -rib 'corpus/*.rib.mrt' -updates 'corpus/*.updates.mrt' \
//	            -as2org corpus/as2org.txt [-gap 140] [-ratio 160] [-o out.tsv]
//	            [-format tsv|json|snapshot] [-strict] [-max-error-rate 0.05]
//	            [-parallelism N] [-progress] [-trace-json events.jsonl]
//	            [-cpuprofile cpu.pb] [-memprofile mem.pb]
//
// -format snapshot writes the binary artifact intentd -snapshot
// cold-starts from, skipping MRT re-ingestion entirely.
//
// -progress prints per-stage completions, periodic heartbeats, and an
// end-of-run per-stage summary to stderr; -trace-json streams the same
// telemetry as JSON lines to a file ("-" for stderr). Both observe the
// run without changing its output. SIGINT/SIGTERM cancel the pipeline
// cleanly between records.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"bgpintent"
	"bgpintent/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("intentinfer: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("intentinfer", flag.ContinueOnError)
	var (
		ribGlob = fs.String("rib", "", "glob of TABLE_DUMP_V2 RIB files")
		updGlob = fs.String("updates", "", "glob of BGP4MP updates files")
		as2org  = fs.String("as2org", "", "as2org file (asn|org lines)")
		gap     = fs.Int("gap", 140, "minimum gap between community clusters")
		ratio   = fs.Float64("ratio", 160, "on-path:off-path ratio threshold")
		outPath = fs.String("o", "", "write inferences to this file")
		format  = fs.String("format", "tsv", "output format: tsv, json, or snapshot (the binary artifact intentd -snapshot serves from)")
		snapVer = fs.Int("snap-version", 0, "snapshot format version: 0 (auto: 2 for classic-only, 3 with large communities), 3, 2, or 1 (legacy gob)")
		strict  = fs.Bool("strict", false, "fail on the first malformed MRT record instead of skipping it")
		maxErr  = fs.Float64("max-error-rate", bgpintent.DefaultMaxErrorRate,
			"abort when a file's corruption rate exceeds this fraction (negative disables)")
		par      = fs.Int("parallelism", 0, "ingest/classifier workers (0 = one per CPU, 1 = sequential)")
		progress = fs.Bool("progress", false, "print stage timings, heartbeats and a per-stage summary to stderr")
		traceOut = fs.String("trace-json", "", "stream telemetry as JSON lines to this file (\"-\" for stderr)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "tsv", "json", "snapshot":
	default:
		return fmt.Errorf("unknown -format %q (want tsv, json or snapshot)", *format)
	}
	if *snapVer < 0 || *snapVer > 3 {
		return fmt.Errorf("unknown -snap-version %d (want 0, 1, 2 or 3)", *snapVer)
	}
	// Reject bad -gap/-ratio before the (potentially long) load.
	if err := (bgpintent.Params{MinGap: *gap, RatioThreshold: *ratio}).Validate(); err != nil {
		return err
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				log.Printf("memprofile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("memprofile: %v", err)
			}
		}()
	}

	ribs, err := expand(*ribGlob)
	if err != nil {
		return err
	}
	updates, err := expand(*updGlob)
	if err != nil {
		return err
	}
	if len(ribs)+len(updates) == 0 {
		return fmt.Errorf("no input files; use -rib and/or -updates")
	}

	observer, collector, closeTrace, err := buildObserver(*progress, *traceOut)
	if err != nil {
		return err
	}
	defer closeTrace()

	c, stats, err := bgpintent.LoadMRT(ctx,
		bgpintent.Sources{RIBs: ribs, Updates: updates, OrgPath: *as2org},
		bgpintent.LoadOptions{
			Strict: *strict, MaxErrorRate: *maxErr, Parallelism: *par,
			Observer: observer, ProgressInterval: progressInterval,
		})
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "ingest: %s\n", stats.Summary())
	fmt.Fprintf(stdout, "loaded %d unique tuples over %d unique AS paths from %d vantage points\n",
		c.Tuples(), c.Paths(), len(c.VantagePoints()))
	fmt.Fprintf(stdout, "observed %d distinct communities (+%d large)\n",
		len(c.Communities()), c.LargeCommunities())

	params := bgpintent.Params{MinGap: *gap, RatioThreshold: *ratio, Parallelism: *par, Observer: observer}
	if err := params.Validate(); err != nil {
		return err
	}
	res, err := c.ClassifyContext(ctx, params)
	if err != nil {
		return err
	}
	action, info := res.Counts()
	if la, li := res.LargeCounts(); la+li > 0 {
		fmt.Fprintf(stdout, "classified %d communities: %d action, %d information (large: %d action, %d information)\n",
			action+info+la+li, action, info, la, li)
	} else {
		fmt.Fprintf(stdout, "classified %d communities: %d action, %d information\n", action+info, action, info)
	}

	if *outPath != "" {
		var fill func(io.Writer) error
		switch *format {
		case "tsv":
			fill = res.WriteTSV
		case "json":
			fill = res.WriteJSON
		case "snapshot":
			info := c.SnapshotInfo(sourceLabel(*ribGlob, *updGlob))
			switch *snapVer {
			case 1:
				fill = func(w io.Writer) error { return res.WriteSnapshot(w, info) }
			case 2:
				fill = func(w io.Writer) error { return res.WriteSnapshotV2(w, info) }
			case 3:
				fill = func(w io.Writer) error { return res.WriteSnapshotV3(w, info) }
			default:
				fill = func(w io.Writer) error { return res.WriteSnapshotFlat(w, info) }
			}
		}
		err := obs.Time(ctx, observer, obs.StageSnapshotWrite, *outPath, nil, func(context.Context) error {
			return writeAtomic(*outPath, fill)
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s inferences to %s\n", *format, *outPath)
	}
	if collector != nil {
		fmt.Fprint(os.Stderr, collector.RenderSummary())
	}
	return nil
}

// progressInterval is the -progress/-trace-json heartbeat period.
const progressInterval = time.Second

// buildObserver assembles the telemetry sinks for -progress and
// -trace-json. The returned Observer is nil when both are off; the
// Collector (non-nil only with -progress) accumulates the end-of-run
// per-stage summary; closeTrace flushes and closes the trace file.
func buildObserver(progress bool, traceOut string) (bgpintent.Observer, *obs.Collector, func(), error) {
	var sinks []bgpintent.Observer
	var collector *obs.Collector
	closeTrace := func() {}
	if progress {
		sinks = append(sinks, obs.NewProgressPrinter(os.Stderr))
		collector = &obs.Collector{}
		sinks = append(sinks, collector)
	}
	if traceOut != "" {
		w := io.Writer(os.Stderr)
		if traceOut != "-" {
			f, err := os.Create(traceOut)
			if err != nil {
				return nil, nil, nil, err
			}
			w = f
			closeTrace = func() { f.Close() }
		}
		sinks = append(sinks, obs.NewJSONTracer(w))
	}
	if len(sinks) == 0 {
		return nil, nil, closeTrace, nil
	}
	return obs.Multi(sinks...), collector, closeTrace, nil
}

// sourceLabel records the input globs as snapshot provenance.
func sourceLabel(ribGlob, updGlob string) string {
	switch {
	case ribGlob != "" && updGlob != "":
		return ribGlob + " + " + updGlob
	case ribGlob != "":
		return ribGlob
	default:
		return updGlob
	}
}

// writeAtomic writes the output to a temporary file in the destination
// directory and renames it into place, so a mid-stream failure never
// leaves a half-written artifact behind.
func writeAtomic(path string, fill func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = fill(tmp); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func expand(glob string) ([]string, error) {
	if glob == "" {
		return nil, nil
	}
	files, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("bad glob %q: %v", glob, err)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("glob %q matched no files", glob)
	}
	return files, nil
}

// Command intentload is the closed-loop load harness for intentd. It
// drives a running server with a deterministic, zipf-skewed mix of
// /v1/community lookups (keys drawn from a snapshot file) and writes a
// BENCH_serve.json report with throughput, latency quantiles and the
// server's RSS.
//
// Usage:
//
//	intentload -url http://127.0.0.1:8642 -snapshot corpus.snap \
//	           [-mode closed|open] [-duration 10s] [-concurrency 8]
//	           [-rate 1000] [-seed 1] [-max-keys 4096]
//	           [-out BENCH_serve.json] [-server-pid N]
//	           [-baseline BENCH_serve.json] [-max-regress 0.25] [-check file]
//
// -mode closed keeps -concurrency workers issuing back-to-back
// requests; -mode open paces arrivals at -rate per second and measures
// latency from the scheduled arrival time, so queueing delay is not
// coordinated away. -baseline fails the run when p99 regressed more
// than -max-regress over the committed report. -check only validates
// an existing report file and exits — the CI schema gate.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"bgpintent"
	"bgpintent/internal/loadgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("intentload: ")
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		if errors.Is(err, context.Canceled) {
			log.Fatal("interrupted")
		}
		log.Fatal(err)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("intentload", flag.ContinueOnError)
	var (
		baseURL  = fs.String("url", "http://127.0.0.1:8642", "intentd base URL")
		snapPath = fs.String("snapshot", "", "snapshot file to draw lookup keys from")
		mode     = fs.String("mode", loadgen.ModeClosed, "loop discipline: closed or open")
		duration = fs.Duration("duration", 10*time.Second, "how long to drive load")
		conc     = fs.Int("concurrency", 8, "workers (closed) / in-flight cap (open)")
		rate     = fs.Float64("rate", 1000, "open-mode arrival rate, requests/second")
		seed     = fs.Int64("seed", 1, "deterministic request-sequence seed")
		maxKeys  = fs.Int("max-keys", 4096, "cap on lookup keys drawn from the snapshot")
		outPath  = fs.String("out", "", "write the BENCH_serve.json report here")
		svrPID   = fs.Int("server-pid", 0, "intentd pid for RSS sampling (0 skips)")
		baseline = fs.String("baseline", "", "compare p99 against this committed report")
		maxReg   = fs.Float64("max-regress", 0.25, "allowed p99 regression over -baseline (fraction)")
		check    = fs.String("check", "", "validate this report file and exit (no load)")
		wait     = fs.Duration("wait-ready", 10*time.Second, "how long to wait for /healthz before driving load")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *check != "" {
		rep, err := loadgen.ReadReport(*check)
		if err != nil {
			return err
		}
		if err := rep.Validate(); err != nil {
			return fmt.Errorf("%s: %w", *check, err)
		}
		fmt.Printf("%s: valid (%s, %.0f qps, p99 %.1fµs)\n", *check, rep.Mode, rep.QPS, rep.P99Micros)
		if *baseline != "" {
			base, err := loadgen.ReadReport(*baseline)
			if err != nil {
				return err
			}
			if err := loadgen.CompareBaseline(base, rep, *maxReg); err != nil {
				return err
			}
			fmt.Printf("within baseline: p99 %.1fµs vs %.1fµs (+%d%% allowed)\n",
				rep.P99Micros, base.P99Micros, int(*maxReg*100))
		}
		return nil
	}

	paths, err := buildPaths(*snapPath, *maxKeys)
	if err != nil {
		return err
	}
	if *wait > 0 {
		if err := loadgen.WaitReady(*baseURL+"/healthz", *wait); err != nil {
			return err
		}
	}

	cfg := loadgen.Config{
		BaseURL:     *baseURL,
		Paths:       paths,
		Mode:        *mode,
		Duration:    *duration,
		Concurrency: *conc,
		Rate:        *rate,
		Seed:        *seed,
	}
	log.Printf("driving %s for %v: %d keys, concurrency %d, seed %d",
		*baseURL, *duration, len(paths), *conc, *seed)
	res, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}

	rep := loadgen.BuildReport(cfg, res, *svrPID)
	if err := rep.Validate(); err != nil {
		return fmt.Errorf("run produced an invalid report: %w", err)
	}
	fmt.Printf("%s mode: %d requests (%d errors) in %v — %.0f qps\n",
		rep.Mode, rep.Requests, rep.Errors, res.Elapsed, rep.QPS)
	fmt.Printf("latency: p50 %.1fµs  p90 %.1fµs  p99 %.1fµs  p999 %.1fµs  max %.1fµs\n",
		rep.P50Micros, rep.P90Micros, rep.P99Micros, rep.P999Micros, rep.MaxMicros)
	if rep.RSSBytes > 0 {
		fmt.Printf("server rss: %.1f MiB\n", float64(rep.RSSBytes)/(1<<20))
	}
	if res.DroppedSend > 0 {
		log.Printf("warning: %d open-mode arrivals dropped (all workers busy); raise -concurrency or lower -rate", res.DroppedSend)
	}

	if *baseline != "" {
		base, err := loadgen.ReadReport(*baseline)
		if err != nil {
			return err
		}
		if err := loadgen.CompareBaseline(base, rep, *maxReg); err != nil {
			return err
		}
		fmt.Printf("within baseline: p99 %.1fµs vs %.1fµs (+%d%% allowed)\n",
			rep.P99Micros, base.P99Micros, int(*maxReg*100))
	}
	if *outPath != "" {
		if err := writeReport(*outPath, rep); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	return nil
}

// buildPaths derives the request-key universe. With a snapshot it is
// every labeled community (capped), ordered deterministically, hit via
// /v1/community/{comm}; without one it falls back to the read-only
// metadata endpoints.
func buildPaths(snapPath string, maxKeys int) ([]string, error) {
	if snapPath == "" {
		return []string{"/v1/stats", "/v1/health", "/v1/metrics"}, nil
	}
	res, _, err := bgpintent.OpenSnapshotFile(snapPath)
	if err != nil {
		return nil, fmt.Errorf("open snapshot: %w", err)
	}
	defer res.Close()
	labeled := res.Labeled()
	if len(labeled) == 0 {
		return nil, fmt.Errorf("snapshot %s has no labeled communities", snapPath)
	}
	if maxKeys > 0 && len(labeled) > maxKeys {
		labeled = labeled[:maxKeys]
	}
	paths := make([]string, 0, len(labeled)+1)
	for _, lc := range labeled {
		paths = append(paths, fmt.Sprintf("/v1/community/%d:%d", lc.Community.ASN, lc.Community.Value))
	}
	// One stats key in the mix exercises the aggregate cache path too.
	paths = append(paths, "/v1/stats")
	return paths, nil
}

// writeReport writes atomically so a failed run never truncates a
// committed benchmark file.
func writeReport(path string, rep loadgen.Report) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = rep.WriteJSON(tmp); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Command gencorpus generates a synthetic BGP corpus: MRT RIB and
// updates files per collector and day, the as2org sibling file, the
// ground-truth community dictionary, and the CAIDA-format AS
// relationship ground truth. The output substitutes for a week of
// RouteViews/RIPE RIS data (see DESIGN.md §2).
//
// Usage:
//
//	gencorpus -out corpus/ [-scale tiny|default] [-seed N] [-days N] [-large-matrix|-no-large]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"bgpintent/internal/asrel"
	"bgpintent/internal/corpus"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gencorpus: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gencorpus", flag.ContinueOnError)
	var (
		out    = fs.String("out", "corpus", "output directory")
		scale  = fs.String("scale", "default", "corpus scale: tiny, default or large")
		seed   = fs.Int64("seed", 1, "generation seed")
		days   = fs.Int("days", 7, "days of data to emit")
		matrix  = fs.Bool("large-matrix", false, "mirror every origin-attached community as a large community (arouteserver-style std/lrg matrix ground truth)")
		noLarge = fs.Bool("no-large", false, "emit a classic-only corpus: no large-community mirroring at all")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *matrix && *noLarge {
		return fmt.Errorf("-large-matrix and -no-large are mutually exclusive")
	}

	cfg := corpus.DefaultConfig()
	switch *scale {
	case "tiny":
		cfg = corpus.TinyConfig()
	case "large":
		cfg.Scale = corpus.ScaleLarge
	case "default":
	default:
		return fmt.Errorf("unknown -scale %q", *scale)
	}
	cfg.Seed = *seed
	cfg.LargeMatrix = *matrix
	cfg.NoLargeComms = *noLarge
	cfg.Days = 0 // days are simulated below, one file set at a time

	c, err := corpus.Build(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	stats := c.Topo.Stats()
	fmt.Fprintf(stdout, "topology: %d ASes (%d/%d/%d/%d per tier), %d p2c, %d p2p, %d IXPs\n",
		stats.ASes, stats.Tier1, stats.Tier2, stats.Tier3, stats.Stubs,
		stats.P2CLinks, stats.P2PLinks, stats.IXPs)
	fmt.Fprintf(stdout, "plans: %d ASes define %d communities (%d action, %d info)\n",
		stats.PlansDefined, stats.TotalCommunityDefs, stats.ActionDefs, stats.InfoDefs)
	fmt.Fprintf(stdout, "vantage points: %d across %d collectors\n", len(c.Sim.VPs()), c.Sim.Collectors())

	const t0 = 1714521600 // 2024-05-01 00:00 UTC, like the paper's week
	for day := 0; day < *days; day++ {
		res := c.Sim.RunDay(day)
		ts := uint32(t0 + day*86400)
		for col := 0; col < c.Sim.Collectors(); col++ {
			ribPath := filepath.Join(*out, fmt.Sprintf("rc%02d.day%d.rib.mrt", col, day))
			if err := writeFile(ribPath, func(f *os.File) error {
				return c.Sim.WriteRIB(f, ts, col, res)
			}); err != nil {
				return err
			}
			updPath := filepath.Join(*out, fmt.Sprintf("rc%02d.day%d.updates.mrt", col, day))
			if err := writeFile(updPath, func(f *os.File) error {
				return c.Sim.WriteUpdates(f, ts+3600, col, res, 0.2)
			}); err != nil {
				return err
			}
		}
		fmt.Fprintf(stdout, "day %d: %d views\n", day, len(res.Views))
	}

	if err := writeFile(filepath.Join(*out, "as2org.txt"), func(f *os.File) error {
		_, err := c.Orgs.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	if err := writeFile(filepath.Join(*out, "dictionary.txt"), func(f *os.File) error {
		_, err := c.Dict.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	// Ground-truth relationships in CAIDA format, for validating the
	// bundled Gao inference.
	g := asrel.NewGraph()
	for asn, a := range c.Topo.ASes {
		for _, cust := range a.Customers {
			g.SetP2C(asn, cust)
		}
		for _, peer := range a.Peers {
			g.SetP2P(asn, peer)
		}
	}
	if err := writeFile(filepath.Join(*out, "asrel.txt"), func(f *os.File) error {
		_, err := g.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote corpus to %s\n", *out)
	return nil
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

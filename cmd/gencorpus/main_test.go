package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunGeneratesCorpus(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-out", dir, "-scale", "tiny", "-days", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rc00.day0.rib.mrt", "rc00.day0.updates.mrt",
		"rc01.day0.rib.mrt", "as2org.txt", "dictionary.txt", "asrel.txt",
	} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing output %s: %v", want, err)
		}
	}
	if !strings.Contains(out.String(), "topology:") || !strings.Contains(out.String(), "wrote corpus") {
		t.Errorf("unexpected output: %q", out.String())
	}
}

func TestRunRejectsBadScale(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}, &bytes.Buffer{}); err == nil {
		t.Error("bad scale accepted")
	}
}

// Command snapconvert converts intentd snapshots between format
// versions and verifies their integrity. v1 is the legacy gob format;
// v2 is the flat, mmap-able layout intentd serves zero-copy; v3 is v2
// plus the large-community sections. Verdicts are identical across
// formats, so converting a fleet's snapshots to a flat version is
// purely an operational upgrade: O(1) cold start and shared page
// cache. Converting a snapshot with large-community inferences to v2
// fails (v2 cannot represent them); use -to 3 or the -to 0 auto mode.
//
// Usage:
//
//	snapconvert -in corpus.snap -out corpus.v3.snap -to 3
//	snapconvert -verify corpus.snap
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"bgpintent"
	"bgpintent/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snapconvert: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("snapconvert", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "snapshot to read (any format version)")
		out    = fs.String("out", "", "converted snapshot to write")
		to     = fs.Int("to", 2, "target format version: 3 (flat + large communities), 2 (flat, classic-only), 1 (legacy gob), or 0 (auto: 2 unless large inferences are present)")
		verify = fs.String("verify", "", "check this snapshot's structure and checksums, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *verify != "" {
		data, err := os.ReadFile(*verify)
		if err != nil {
			return err
		}
		if err := core.VerifySnapshot(data); err != nil {
			return fmt.Errorf("%s: %w", *verify, err)
		}
		info, err := readInfo(*verify)
		if err != nil {
			return err
		}
		fmt.Printf("%s: ok (source %q, %d communities)\n", *verify, info.Source, info.Communities)
		return nil
	}

	if *in == "" || *out == "" {
		return fmt.Errorf("need -in and -out (or -verify); see -h")
	}
	if *to < 0 || *to > 3 {
		return fmt.Errorf("unknown -to version %d (want 0, 1, 2 or 3)", *to)
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	res, info, err := bgpintent.ReadSnapshot(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("read %s: %w", *in, err)
	}

	var fill func(io.Writer) error
	switch *to {
	case 0:
		fill = func(w io.Writer) error { return res.WriteSnapshotFlat(w, info) }
	case 1:
		fill = func(w io.Writer) error { return res.WriteSnapshot(w, info) }
	case 2:
		fill = func(w io.Writer) error { return res.WriteSnapshotV2(w, info) }
	case 3:
		fill = func(w io.Writer) error { return res.WriteSnapshotV3(w, info) }
	}
	if err := writeAtomic(*out, fill); err != nil {
		return err
	}

	// Converting is only safe if the result still verifies and opens.
	data, err := os.ReadFile(*out)
	if err != nil {
		return err
	}
	if err := core.VerifySnapshot(data); err != nil {
		return fmt.Errorf("converted snapshot failed verification: %w", err)
	}
	version := *to
	if version == 0 && len(data) > 9 {
		version = int(data[9]) // auto mode: report what was actually written
	}
	st, _ := os.Stat(*out)
	fmt.Printf("wrote %s (v%d, %d bytes, %d communities)\n", *out, version, st.Size(), info.Communities)
	return nil
}

// readInfo loads just the provenance header of a snapshot.
func readInfo(path string) (bgpintent.SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return bgpintent.SnapshotInfo{}, err
	}
	defer f.Close()
	return bgpintent.ReadSnapshotInfo(f)
}

// writeAtomic writes via a temp file and rename, so a failed convert
// never leaves a torn snapshot where the fleet polls for one.
func writeAtomic(path string, fill func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = fill(tmp); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

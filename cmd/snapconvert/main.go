// Command snapconvert converts intentd snapshots between format
// versions and verifies their integrity. v1 is the legacy gob format;
// v2 is the flat, mmap-able layout intentd serves zero-copy. Verdicts
// are identical across formats, so converting a fleet's snapshots to
// v2 is purely an operational upgrade: O(1) cold start and shared page
// cache.
//
// Usage:
//
//	snapconvert -in corpus.snap -out corpus.v2.snap [-to 2]
//	snapconvert -verify corpus.snap
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"bgpintent"
	"bgpintent/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("snapconvert: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("snapconvert", flag.ContinueOnError)
	var (
		in     = fs.String("in", "", "snapshot to read (any format version)")
		out    = fs.String("out", "", "converted snapshot to write")
		to     = fs.Int("to", 2, "target format version: 2 (flat, mmap-able) or 1 (legacy gob)")
		verify = fs.String("verify", "", "check this snapshot's structure and checksums, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *verify != "" {
		data, err := os.ReadFile(*verify)
		if err != nil {
			return err
		}
		if err := core.VerifySnapshot(data); err != nil {
			return fmt.Errorf("%s: %w", *verify, err)
		}
		info, err := readInfo(*verify)
		if err != nil {
			return err
		}
		fmt.Printf("%s: ok (source %q, %d communities)\n", *verify, info.Source, info.Communities)
		return nil
	}

	if *in == "" || *out == "" {
		return fmt.Errorf("need -in and -out (or -verify); see -h")
	}
	if *to != 1 && *to != 2 {
		return fmt.Errorf("unknown -to version %d (want 1 or 2)", *to)
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	res, info, err := bgpintent.ReadSnapshot(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("read %s: %w", *in, err)
	}

	fill := func(w io.Writer) error { return res.WriteSnapshotV2(w, info) }
	if *to == 1 {
		fill = func(w io.Writer) error { return res.WriteSnapshot(w, info) }
	}
	if err := writeAtomic(*out, fill); err != nil {
		return err
	}

	// Converting is only safe if the result still verifies and opens.
	data, err := os.ReadFile(*out)
	if err != nil {
		return err
	}
	if err := core.VerifySnapshot(data); err != nil {
		return fmt.Errorf("converted snapshot failed verification: %w", err)
	}
	st, _ := os.Stat(*out)
	fmt.Printf("wrote %s (v%d, %d bytes, %d communities)\n", *out, *to, st.Size(), info.Communities)
	return nil
}

// readInfo loads just the provenance header of a snapshot.
func readInfo(path string) (bgpintent.SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return bgpintent.SnapshotInfo{}, err
	}
	defer f.Close()
	return bgpintent.ReadSnapshotInfo(f)
}

// writeAtomic writes via a temp file and rename, so a failed convert
// never leaves a torn snapshot where the fleet polls for one.
func writeAtomic(path string, fill func(io.Writer) error) (err error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = fill(tmp); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bgpintent"
)

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags([]string{}); err == nil {
		t.Error("no data source accepted")
	}
	if _, err := parseFlags([]string{"-snapshot", "x", "-rib", "y"}); err == nil {
		t.Error("conflicting sources accepted")
	}
	cfg, err := parseFlags([]string{"-snapshot", "x", "-addr", ":0"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.snapshot != "x" || cfg.addr != ":0" {
		t.Fatalf("cfg = %+v", cfg)
	}
}

// writeTestSnapshot classifies the small synthetic corpus and writes a
// snapshot file, returning its path and the expected counts.
func writeTestSnapshot(t *testing.T) (path string, action, info int) {
	t.Helper()
	c, err := bgpintent.NewSyntheticCorpus(bgpintent.CorpusOptions{Small: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Classify(bgpintent.DefaultParams())
	path = filepath.Join(t.TempDir(), "test.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteSnapshot(f, c.SnapshotInfo("test")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	action, info = res.Counts()
	return path, action, info
}

func TestServeFromSnapshot(t *testing.T) {
	snapPath, wantAction, wantInfo := writeTestSnapshot(t)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	done := make(chan error, 1)
	go func() {
		err := run(ctx, []string{"-snapshot", snapPath, "-addr", "127.0.0.1:0", "-drain-timeout", "5s"}, pw)
		pw.Close()
		done <- err
	}()

	// Wait for the listen line to learn the bound port.
	var addr string
	deadline := time.After(30 * time.Second)
	for addr == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("intentd exited before listening: %v", <-done)
			}
			if rest, found := strings.CutPrefix(line, "listening on "); found {
				addr = rest
			}
		case <-deadline:
			t.Fatal("timed out waiting for listen line")
		}
	}
	base := "http://" + addr

	var stats struct {
		Generation  uint64 `json:"generation"`
		Source      string `json:"source"`
		Action      int    `json:"action"`
		Information int    `json:"information"`
	}
	getJSON(t, base+"/v1/stats", &stats)
	if stats.Action != wantAction || stats.Information != wantInfo {
		t.Fatalf("stats = %+v, want action=%d information=%d", stats, wantAction, wantInfo)
	}
	if stats.Generation != 1 || !strings.HasPrefix(stats.Source, "snapshot:") {
		t.Fatalf("stats provenance %+v", stats)
	}

	// Reload from the same file: generation advances, counts identical.
	resp, err := http.Post(base+"/v1/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	getJSON(t, base+"/v1/stats", &stats)
	if stats.Generation != 2 || stats.Action != wantAction {
		t.Fatalf("post-reload stats %+v", stats)
	}

	// Graceful shutdown via context cancel (what SIGTERM triggers).
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("intentd did not shut down within the drain timeout")
	}
}

func TestRunBadSnapshot(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-snapshot", bad, "-addr", "127.0.0.1:0"}, io.Discard)
	if err == nil {
		t.Fatal("bad snapshot accepted")
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bgpintent"
)

func TestParseFlags(t *testing.T) {
	if _, err := parseFlags([]string{}); err == nil {
		t.Error("no data source accepted")
	}
	if _, err := parseFlags([]string{"-snapshot", "x", "-rib", "y"}); err == nil {
		t.Error("conflicting sources accepted")
	}
	cfg, err := parseFlags([]string{"-snapshot", "x", "-addr", ":0"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.snapshot != "x" || cfg.addr != ":0" {
		t.Fatalf("cfg = %+v", cfg)
	}

	if _, err := parseFlags([]string{"-live", "-snapshot", "x"}); err == nil {
		t.Error("-live with -snapshot accepted")
	}
	if _, err := parseFlags([]string{"-live", "-fault-rate", "1.5"}); err == nil {
		t.Error("fault rate > 1 accepted")
	}
	if _, err := parseFlags([]string{"-snapshot", "x", "-fault-rate", "0.1"}); err == nil {
		t.Error("-fault-rate without -live accepted")
	}
	cfg, err = parseFlags([]string{"-live", "-live-small", "-fault-rate", "0.1", "-window", "48h"})
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.live || !cfg.liveSmall || cfg.faultRate != 0.1 || cfg.windowSpan != 48*time.Hour {
		t.Fatalf("live cfg = %+v", cfg)
	}
}

// startDaemon launches run() with the given flags and returns the base
// URL once the daemon is listening, plus the cancel and exit channel.
func startDaemon(t *testing.T, args ...string) (base string, cancel context.CancelFunc, done chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()

	done = make(chan error, 1)
	go func() {
		err := run(ctx, args, pw)
		pw.Close()
		done <- err
	}()

	deadline := time.After(30 * time.Second)
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("intentd exited before listening: %v", <-done)
			}
			if rest, found := strings.CutPrefix(line, "listening on "); found {
				go func() { // keep draining so the writer never blocks
					for range lines {
					}
				}()
				return "http://" + rest, cancel, done
			}
		case <-deadline:
			t.Fatal("timed out waiting for listen line")
		}
	}
}

// writeTestSnapshot classifies the small synthetic corpus and writes a
// snapshot file, returning its path and the expected counts.
func writeTestSnapshot(t *testing.T) (path string, action, info int) {
	t.Helper()
	c, err := bgpintent.NewSyntheticCorpus(bgpintent.CorpusOptions{Small: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := c.Classify(bgpintent.DefaultParams())
	path = filepath.Join(t.TempDir(), "test.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.WriteSnapshot(f, c.SnapshotInfo("test")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	action, info = res.Counts()
	return path, action, info
}

func TestServeFromSnapshot(t *testing.T) {
	snapPath, wantAction, wantInfo := writeTestSnapshot(t)
	base, cancel, done := startDaemon(t,
		"-snapshot", snapPath, "-addr", "127.0.0.1:0", "-drain-timeout", "5s")

	var stats struct {
		Generation  uint64 `json:"generation"`
		Source      string `json:"source"`
		Action      int    `json:"action"`
		Information int    `json:"information"`
	}
	getJSON(t, base+"/v1/stats", &stats)
	if stats.Action != wantAction || stats.Information != wantInfo {
		t.Fatalf("stats = %+v, want action=%d information=%d", stats, wantAction, wantInfo)
	}
	if stats.Generation != 1 || !strings.HasPrefix(stats.Source, "snapshot:") {
		t.Fatalf("stats provenance %+v", stats)
	}

	// Reload from the same file: generation advances, counts identical.
	resp, err := http.Post(base+"/v1/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	getJSON(t, base+"/v1/stats", &stats)
	if stats.Generation != 2 || stats.Action != wantAction {
		t.Fatalf("post-reload stats %+v", stats)
	}

	// Graceful shutdown via context cancel (what SIGTERM triggers).
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("intentd did not shut down within the drain timeout")
	}
}

func TestRunBadSnapshot(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.snap")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(context.Background(), []string{"-snapshot", bad, "-addr", "127.0.0.1:0"}, io.Discard)
	if err == nil {
		t.Fatal("bad snapshot accepted")
	}
}

// healthBody mirrors the GET /v1/health response.
type healthBody struct {
	Status     string `json:"status"`
	Mode       string `json:"mode"`
	Generation uint64 `json:"generation"`
	Feed       *struct {
		State      string `json:"state"`
		LastSeq    uint64 `json:"last_seq"`
		Updates    uint64 `json:"updates"`
		Reconnects uint64 `json:"reconnects"`
		Snapshots  uint64 `json:"snapshots"`
	} `json:"feed"`
}

// TestServeLiveMode runs the daemon against the faulty simulated feed
// end-to-end: it must come up instantly on the placeholder snapshot,
// install real snapshots from the feed, report live health, reject
// manual reloads with 409, and shut down cleanly.
func TestServeLiveMode(t *testing.T) {
	base, cancel, done := startDaemon(t,
		"-live", "-live-small", "-live-seed", "7", "-live-interval", "0",
		"-fault-rate", "0.05", "-fault-seed", "42", "-fault-stall", "50ms",
		"-feed-read-timeout", "25ms", "-retry-budget", "-1",
		"-snapshot-every", "2000", "-snapshot-interval", "-1ms",
		"-addr", "127.0.0.1:0", "-drain-timeout", "5s")

	// The feed installs snapshots past the gen-1 placeholder.
	var h healthBody
	deadline := time.Now().Add(60 * time.Second)
	for {
		getJSON(t, base+"/v1/health", &h)
		if h.Generation >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no feed snapshot installed; health %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if h.Mode != "live" || h.Feed == nil {
		t.Fatalf("health = %+v, want live mode with feed details", h)
	}
	if h.Feed.LastSeq == 0 || h.Feed.Snapshots == 0 {
		t.Fatalf("feed made no progress: %+v", h.Feed)
	}

	// The installed snapshot is a real classification, not the placeholder.
	var stats struct {
		Source string `json:"source"`
		Action int    `json:"action"`
	}
	getJSON(t, base+"/v1/stats", &stats)
	if !strings.HasPrefix(stats.Source, "live:seq=") || stats.Action == 0 {
		t.Fatalf("stats = %+v, want live-installed classification", stats)
	}

	// Manual reload is the feed's job: structured 409.
	resp, err := http.Post(base+"/v1/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("reload in live mode: status %d, want 409", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("intentd did not shut down")
	}
}

func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

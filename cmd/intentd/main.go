// Command intentd serves BGP community-intent inferences over HTTP: a
// long-running query daemon over the paper's classifier, so downstream
// systems (location filters, anomaly detectors, looking glasses) can
// ask "what is 2914:3075?" without re-running the pipeline.
//
// It loads a precomputed snapshot (intentinfer -format snapshot; v2
// snapshots are memory-mapped for O(1) cold start), raw MRT archives
// (classified on startup), a polled snapshot URL (-replica, for
// horizontally scaled fleets), or — with -live — consumes a simulated
// streaming feed through the fault-tolerant Ingestor, and serves:
//
//	GET  /v1/community/{asn}:{value}  one community's verdict + evidence
//	POST /v1/annotate                 batch: communities or (path, communities) tuples
//	GET  /v1/as/{asn}                 all inferred clusters of one α
//	GET  /v1/stats                    corpus + inference counters
//	GET  /v1/metrics                  the operational counters as JSON
//	GET  /metrics                     the same counters in Prometheus text format
//	POST /v1/admin/reload             rebuild + atomically swap the snapshot
//	GET  /v1/anomalies                CommunityWatch findings (live mode; ?window= ?since= ?detector= ?limit=)
//	GET  /v1/health                   feed/replica health: healthy | stale | degraded (always 200)
//	GET  /v1/snapshot                 the published snapshot file (ETag-gated; -snapshot mode)
//	GET  /healthz                     liveness
//
// Reads are lock-free against an immutable snapshot; SIGHUP or the
// admin endpoint rebuilds in the background and swaps with zero
// downtime. In live mode the feed Ingestor owns snapshot installation
// (reload is disabled with a structured 409), survives disconnects,
// stalls and corrupt frames by resuming from its last applied sequence
// number, and on feed death degrades to serving the last good snapshot
// while /v1/health reports stale/degraded. Live mode also runs
// CommunityWatch (-anomaly, on by default): streaming detectors over
// the feed — community activity spikes, strip/leak disappearances,
// flap churn — attributed with the inferred semantics of each
// generation and served at /v1/anomalies; -events scripts ground-truth
// anomalies into the simulated feed. SIGTERM/SIGINT drain
// connections gracefully within -drain-timeout. -debug-addr exposes
// net/http/pprof on a separate listener.
//
// Usage:
//
//	intentd -snapshot out.snap [-addr :8642]
//	intentd -rib 'corpus/*.rib.mrt' -updates 'corpus/*.updates.mrt' \
//	        -as2org corpus/as2org.txt [-gap 140] [-ratio 160]
//	intentd -live [-live-small] [-fault-rate 0.1] [-window 48h] \
//	        [-events 'spike:3356:666@25h+2h#400'] [-anomaly-bucket 30m]
//	intentd -replica -snapshot-url http://origin:8642/v1/snapshot \
//	        [-poll-interval 15s] [-snapshot-cache /var/cache/intentd]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"bgpintent"
	"bgpintent/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("intentd: ")
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// config is the parsed command line.
type config struct {
	addr         string
	debugAddr    string
	snapshot     string
	ribGlob      string
	updGlob      string
	as2org       string
	gap          int
	ratio        float64
	par          int
	strict       bool
	maxErr       float64
	drainTimeout time.Duration

	// HTTP listener hardening (0 = package default, negative = disabled).
	readHeaderTimeout time.Duration
	readTimeout       time.Duration
	idleTimeout       time.Duration

	// replica mode
	replica       bool
	snapshotURL   string
	pollInterval  time.Duration
	snapshotCache string

	// live-feed mode
	live          bool
	liveSmall     bool
	liveSeed      int64
	liveDays      int
	liveLoop      bool
	liveInterval  time.Duration
	faultRate     float64
	faultSeed     int64
	faultStall    time.Duration
	windowSpan    time.Duration
	windowBuckets int
	events        string
	anomaly       bool
	anomalyBucket time.Duration
	anomalyHist   int
	staleAfter    time.Duration
	feedReadTO    time.Duration
	retryBudget   int
	snapEvery     int
	snapInterval  time.Duration
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("intentd", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", ":8642", "HTTP listen address")
	fs.StringVar(&cfg.debugAddr, "debug-addr", "", "optional pprof listen address (e.g. 127.0.0.1:6060)")
	fs.StringVar(&cfg.snapshot, "snapshot", "", "cold-start from this intentinfer -format snapshot file")
	fs.StringVar(&cfg.ribGlob, "rib", "", "glob of TABLE_DUMP_V2 RIB files")
	fs.StringVar(&cfg.updGlob, "updates", "", "glob of BGP4MP updates files")
	fs.StringVar(&cfg.as2org, "as2org", "", "as2org file (asn|org lines)")
	fs.IntVar(&cfg.gap, "gap", 140, "minimum gap between community clusters")
	fs.Float64Var(&cfg.ratio, "ratio", 160, "on-path:off-path ratio threshold")
	fs.IntVar(&cfg.par, "parallelism", 0, "ingest/classifier workers (0 = one per CPU)")
	fs.BoolVar(&cfg.strict, "strict", false, "fail on the first malformed MRT record")
	fs.Float64Var(&cfg.maxErr, "max-error-rate", bgpintent.DefaultMaxErrorRate,
		"abort a load when a file's corruption rate exceeds this fraction")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", serve.DefaultDrainTimeout,
		"how long to wait for in-flight requests at shutdown")
	fs.DurationVar(&cfg.readHeaderTimeout, "read-header-timeout", serve.DefaultReadHeaderTimeout,
		"HTTP header read deadline (slow-loris guard; negative disables)")
	fs.DurationVar(&cfg.readTimeout, "read-timeout", serve.DefaultReadTimeout,
		"HTTP full-request read deadline (negative disables)")
	fs.DurationVar(&cfg.idleTimeout, "idle-timeout", serve.DefaultIdleTimeout,
		"HTTP keep-alive idle deadline (negative disables)")

	fs.BoolVar(&cfg.replica, "replica", false, "poll a snapshot URL instead of building locally (requires -snapshot-url)")
	fs.StringVar(&cfg.snapshotURL, "snapshot-url", "", "snapshot endpoint to poll in replica mode (e.g. http://origin:8642/v1/snapshot)")
	fs.DurationVar(&cfg.pollInterval, "poll-interval", serve.DefaultPollInterval, "replica snapshot poll period")
	fs.StringVar(&cfg.snapshotCache, "snapshot-cache", "", "directory for fetched replica snapshots (default: system temp dir)")

	fs.BoolVar(&cfg.live, "live", false, "consume the simulated streaming feed instead of a static corpus")
	fs.BoolVar(&cfg.liveSmall, "live-small", false, "use the test-sized synthetic Internet for the live feed")
	fs.Int64Var(&cfg.liveSeed, "live-seed", 1, "deterministic seed of the live feed")
	fs.IntVar(&cfg.liveDays, "live-days", 2, "distinct simulated days the live feed covers")
	fs.BoolVar(&cfg.liveLoop, "live-loop", true, "replay the simulated days forever (endless feed)")
	fs.DurationVar(&cfg.liveInterval, "live-interval", time.Millisecond, "wall-clock pacing between feed updates (0 = full speed)")
	fs.Float64Var(&cfg.faultRate, "fault-rate", 0, "per-delivery fault injection probability in [0,1] (0 disables)")
	fs.Int64Var(&cfg.faultSeed, "fault-seed", 0, "deterministic seed of the fault injector")
	fs.DurationVar(&cfg.faultStall, "fault-stall", 0, "injected stall length (0 = injector default)")
	fs.StringVar(&cfg.events, "events", "", `scripted anomalies for the live feed, e.g. "spike:3356:666@25h+2h#400;strip:2914@30h+3h"`)
	fs.BoolVar(&cfg.anomaly, "anomaly", true, "run CommunityWatch streaming anomaly detection on the live feed")
	fs.DurationVar(&cfg.anomalyBucket, "anomaly-bucket", 0, "anomaly detection bucket width in feed time (0 = default 30m)")
	fs.IntVar(&cfg.anomalyHist, "anomaly-buckets", 0, "baseline buckets kept per community series (0 = default 32)")
	fs.DurationVar(&cfg.windowSpan, "window", 0, "rolling window span in feed time (0 = keep everything)")
	fs.IntVar(&cfg.windowBuckets, "window-buckets", 0, "rolling window eviction granularity (0 = default)")
	fs.DurationVar(&cfg.staleAfter, "stale-after", 0, "feed staleness budget for /v1/health (0 = default 2m)")
	fs.DurationVar(&cfg.feedReadTO, "feed-read-timeout", 0, "feed read deadline before a stall reconnect (0 = default 30s)")
	fs.IntVar(&cfg.retryBudget, "retry-budget", 0, "consecutive failed feed cycles before degrading (0 = default, negative = never)")
	fs.IntVar(&cfg.snapEvery, "snapshot-every", 0, "feed updates per published snapshot (0 = default, negative = disabled)")
	fs.DurationVar(&cfg.snapInterval, "snapshot-interval", 0, "wall time per published snapshot (0 = default, negative = disabled)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	switch {
	case cfg.replica:
		if cfg.live || cfg.snapshot != "" || cfg.ribGlob != "" || cfg.updGlob != "" {
			return nil, fmt.Errorf("-replica and -live/-snapshot/-rib/-updates are mutually exclusive")
		}
		if cfg.snapshotURL == "" {
			return nil, fmt.Errorf("-replica requires -snapshot-url")
		}
		if cfg.pollInterval <= 0 {
			return nil, fmt.Errorf("-poll-interval must be positive")
		}
	case cfg.live:
		if cfg.snapshot != "" || cfg.ribGlob != "" || cfg.updGlob != "" {
			return nil, fmt.Errorf("-live and -snapshot/-rib/-updates are mutually exclusive")
		}
		if cfg.faultRate < 0 || cfg.faultRate > 1 {
			return nil, fmt.Errorf("-fault-rate %g outside [0,1]", cfg.faultRate)
		}
	default:
		if cfg.snapshotURL != "" {
			return nil, fmt.Errorf("-snapshot-url requires -replica")
		}
		if cfg.faultRate != 0 {
			return nil, fmt.Errorf("-fault-rate requires -live")
		}
		if cfg.events != "" {
			return nil, fmt.Errorf("-events requires -live")
		}
		if cfg.snapshot == "" && cfg.ribGlob == "" && cfg.updGlob == "" {
			return nil, fmt.Errorf("no data source: use -snapshot, -rib/-updates, -replica, or -live")
		}
		if cfg.snapshot != "" && (cfg.ribGlob != "" || cfg.updGlob != "") {
			return nil, fmt.Errorf("-snapshot and -rib/-updates are mutually exclusive")
		}
	}
	if err := (bgpintent.Params{MinGap: cfg.gap, RatioThreshold: cfg.ratio}).Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// builder returns the serve.Builder for the configured data source;
// every reload re-reads the snapshot file or re-globs and re-ingests
// the MRT archives, so a reload picks up replaced files.
func builder(cfg *config) serve.Builder {
	if cfg.snapshot != "" {
		return func(context.Context) (*bgpintent.Result, bgpintent.SnapshotInfo, string, error) {
			// v2 snapshots are memory-mapped and served zero-copy; v1
			// falls back to the heap decode path.
			res, info, err := bgpintent.OpenSnapshotFile(cfg.snapshot)
			if err != nil {
				return nil, bgpintent.SnapshotInfo{}, "", err
			}
			return res, info, "snapshot:" + filepath.Base(cfg.snapshot), nil
		}
	}
	return func(ctx context.Context) (*bgpintent.Result, bgpintent.SnapshotInfo, string, error) {
		ribs, err := expand(cfg.ribGlob)
		if err != nil {
			return nil, bgpintent.SnapshotInfo{}, "", err
		}
		updates, err := expand(cfg.updGlob)
		if err != nil {
			return nil, bgpintent.SnapshotInfo{}, "", err
		}
		if len(ribs)+len(updates) == 0 {
			return nil, bgpintent.SnapshotInfo{}, "", fmt.Errorf("globs matched no files")
		}
		// The builder honors its context: a daemon shutting down mid-
		// reload abandons the build instead of finishing it into the void.
		c, stats, err := bgpintent.LoadMRT(ctx,
			bgpintent.Sources{RIBs: ribs, Updates: updates, OrgPath: cfg.as2org},
			bgpintent.LoadOptions{Strict: cfg.strict, MaxErrorRate: cfg.maxErr, Parallelism: cfg.par})
		if err != nil {
			return nil, bgpintent.SnapshotInfo{}, "", err
		}
		log.Printf("ingest: %s", stats.Summary())
		res, err := c.ClassifyContext(ctx,
			bgpintent.Params{MinGap: cfg.gap, RatioThreshold: cfg.ratio, Parallelism: cfg.par})
		if err != nil {
			return nil, bgpintent.SnapshotInfo{}, "", err
		}
		source := fmt.Sprintf("mrt:%d files", len(ribs)+len(updates))
		return res, c.SnapshotInfo(source), source, nil
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}

	start := time.Now()
	b := builder(cfg)
	if cfg.live {
		// Live mode starts serving immediately from an empty placeholder;
		// the feed Ingestor installs real snapshots as they are classified.
		b = func(context.Context) (*bgpintent.Result, bgpintent.SnapshotInfo, string, error) {
			res, info := bgpintent.EmptyResult()
			return res, info, "live:awaiting-feed", nil
		}
	}
	if cfg.replica {
		// Replica mode likewise serves a placeholder until the first
		// successful poll installs a fetched snapshot.
		b = func(context.Context) (*bgpintent.Result, bgpintent.SnapshotInfo, string, error) {
			res, info := bgpintent.EmptyResult()
			return res, info, "replica:awaiting-poll", nil
		}
	}
	srv, err := serve.New(ctx, b, log.Printf)
	if err != nil {
		return err
	}
	if cfg.snapshot != "" {
		// Publish the file this instance serves from, so replicas can
		// point -snapshot-url at this origin.
		srv.SetSnapshotFile(cfg.snapshot)
	}
	if cfg.live {
		if err := startLive(ctx, cfg, srv); err != nil {
			return err
		}
	}
	if cfg.replica {
		srv.DisableReload("replica mode: snapshots are installed from the polled origin")
		rep := serve.NewReplica(srv, serve.ReplicaConfig{
			URL:      cfg.snapshotURL,
			Interval: cfg.pollInterval,
			CacheDir: cfg.snapshotCache,
		})
		// One synchronous poll so a reachable origin is served from the
		// very first request; failure only degrades (the poller retries).
		if _, err := rep.Poll(ctx); err != nil {
			log.Printf("initial poll failed, serving placeholder until the origin answers: %v", err)
		}
		go rep.Run(ctx) //nolint:errcheck // Run only returns on ctx cancel
	}
	snap := srv.Snapshot()
	fmt.Fprintf(stdout, "ready: %v (startup %v)\n", snap, time.Since(start).Round(time.Millisecond))

	// SIGHUP: rebuild and swap with zero downtime.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if _, err := srv.Reload(context.Background()); err != nil {
				log.Printf("SIGHUP reload failed: %v", err)
			}
		}
	}()

	if cfg.debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", cfg.debugAddr)
			if err := http.ListenAndServe(cfg.debugAddr, dbg); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	return srv.ListenAndServe(ctx, serve.ServeConfig{
		Addr:              cfg.addr,
		DrainTimeout:      cfg.drainTimeout,
		ReadHeaderTimeout: cfg.readHeaderTimeout,
		ReadTimeout:       cfg.readTimeout,
		IdleTimeout:       cfg.idleTimeout,
		OnListen: func(a net.Addr) {
			fmt.Fprintf(stdout, "listening on %s\n", a)
		},
	})
}

// feedAdapter bridges the facade's live-feed health into the serving
// layer's structural type (the fields match one-to-one by design).
type feedAdapter struct{ live *bgpintent.Live }

func (f feedAdapter) FeedHealth() serve.FeedHealth {
	h := f.live.Health()
	return serve.FeedHealth{
		Status:     h.Status,
		State:      h.State,
		LastSeq:    h.LastSeq,
		LastUpdate: h.LastUpdate,
		Staleness:  h.Staleness,
		Updates:    h.Updates,
		Reconnects: h.Reconnects,
		Snapshots:  h.Snapshots,
	}
}

// startLive attaches the streaming feed to the server: snapshots from
// the Ingestor swap in through the zero-downtime install path, reload
// is disabled (the feed owns the snapshot), and /v1/health plus the
// feed gauges report staleness. A dying feed only degrades the
// service — the daemon keeps serving the last good snapshot.
func startLive(ctx context.Context, cfg *config, srv *serve.Server) error {
	srv.DisableReload("live mode: snapshots are installed from the feed")
	live, err := bgpintent.StartLive(ctx, bgpintent.LiveOptions{
		Seed:     cfg.liveSeed,
		Days:     cfg.liveDays,
		Small:    cfg.liveSmall,
		Loop:     cfg.liveLoop,
		Interval: cfg.liveInterval,

		Events:         cfg.events,
		Anomaly:        cfg.anomaly,
		AnomalyBucket:  cfg.anomalyBucket,
		AnomalyHistory: cfg.anomalyHist,

		FaultRate:  cfg.faultRate,
		FaultSeed:  cfg.faultSeed,
		FaultStall: cfg.faultStall,

		Params: bgpintent.Params{MinGap: cfg.gap, RatioThreshold: cfg.ratio, Parallelism: cfg.par},

		WindowSpan:    cfg.windowSpan,
		WindowBuckets: cfg.windowBuckets,

		ReadTimeout: cfg.feedReadTO,
		StaleAfter:  cfg.staleAfter,
		RetryBudget: cfg.retryBudget,

		SnapshotEvery:    cfg.snapEvery,
		SnapshotInterval: cfg.snapInterval,

		OnSnapshot: func(res *bgpintent.Result, info bgpintent.SnapshotInfo, lastSeq uint64) {
			snap := srv.Install(res, info, fmt.Sprintf("live:seq=%d", lastSeq), 0)
			log.Printf("installed snapshot gen %d (feed seq %d, %d tuples)",
				snap.Gen, lastSeq, info.Tuples)
		},
		Logf: log.Printf,
	})
	if err != nil {
		return err
	}
	srv.SetFeed(feedAdapter{live})
	if w := live.Anomalies(); w != nil {
		// GET /v1/anomalies, the health anomalies block and the
		// intentd_anomaly_* gauges all read from this watcher.
		srv.SetAnomalies(w)
	}
	go func() {
		switch err := live.Wait(); {
		case err == nil:
			log.Printf("live feed ended; serving the final snapshot")
		case ctx.Err() != nil:
			// Shutdown; the HTTP drain path logs its own exit.
		default:
			log.Printf("live feed abandoned (%v); serving the last good snapshot", err)
		}
	}()
	return nil
}

func expand(glob string) ([]string, error) {
	if glob == "" {
		return nil, nil
	}
	files, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("bad glob %q: %v", glob, err)
	}
	return files, nil
}

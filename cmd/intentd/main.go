// Command intentd serves BGP community-intent inferences over HTTP: a
// long-running query daemon over the paper's classifier, so downstream
// systems (location filters, anomaly detectors, looking glasses) can
// ask "what is 2914:3075?" without re-running the pipeline.
//
// It loads either a precomputed snapshot (intentinfer -format
// snapshot; cold start in milliseconds) or raw MRT archives (classified
// on startup), and serves:
//
//	GET  /v1/community/{asn}:{value}  one community's verdict + evidence
//	POST /v1/annotate                 batch: communities or (path, communities) tuples
//	GET  /v1/as/{asn}                 all inferred clusters of one α
//	GET  /v1/stats                    corpus + inference counters
//	GET  /v1/metrics                  the operational counters as JSON
//	GET  /metrics                     the same counters in Prometheus text format
//	POST /v1/admin/reload             rebuild + atomically swap the snapshot
//	GET  /healthz                     liveness
//
// Reads are lock-free against an immutable snapshot; SIGHUP or the
// admin endpoint rebuilds in the background and swaps with zero
// downtime. SIGTERM/SIGINT drain connections gracefully within
// -drain-timeout. -debug-addr exposes net/http/pprof on a separate
// listener.
//
// Usage:
//
//	intentd -snapshot out.snap [-addr :8642]
//	intentd -rib 'corpus/*.rib.mrt' -updates 'corpus/*.updates.mrt' \
//	        -as2org corpus/as2org.txt [-gap 140] [-ratio 160]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"bgpintent"
	"bgpintent/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("intentd: ")
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// config is the parsed command line.
type config struct {
	addr         string
	debugAddr    string
	snapshot     string
	ribGlob      string
	updGlob      string
	as2org       string
	gap          int
	ratio        float64
	par          int
	strict       bool
	maxErr       float64
	drainTimeout time.Duration
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("intentd", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", ":8642", "HTTP listen address")
	fs.StringVar(&cfg.debugAddr, "debug-addr", "", "optional pprof listen address (e.g. 127.0.0.1:6060)")
	fs.StringVar(&cfg.snapshot, "snapshot", "", "cold-start from this intentinfer -format snapshot file")
	fs.StringVar(&cfg.ribGlob, "rib", "", "glob of TABLE_DUMP_V2 RIB files")
	fs.StringVar(&cfg.updGlob, "updates", "", "glob of BGP4MP updates files")
	fs.StringVar(&cfg.as2org, "as2org", "", "as2org file (asn|org lines)")
	fs.IntVar(&cfg.gap, "gap", 140, "minimum gap between community clusters")
	fs.Float64Var(&cfg.ratio, "ratio", 160, "on-path:off-path ratio threshold")
	fs.IntVar(&cfg.par, "parallelism", 0, "ingest/classifier workers (0 = one per CPU)")
	fs.BoolVar(&cfg.strict, "strict", false, "fail on the first malformed MRT record")
	fs.Float64Var(&cfg.maxErr, "max-error-rate", bgpintent.DefaultMaxErrorRate,
		"abort a load when a file's corruption rate exceeds this fraction")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", serve.DefaultDrainTimeout,
		"how long to wait for in-flight requests at shutdown")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if cfg.snapshot == "" && cfg.ribGlob == "" && cfg.updGlob == "" {
		return nil, fmt.Errorf("no data source: use -snapshot, or -rib/-updates")
	}
	if cfg.snapshot != "" && (cfg.ribGlob != "" || cfg.updGlob != "") {
		return nil, fmt.Errorf("-snapshot and -rib/-updates are mutually exclusive")
	}
	if err := (bgpintent.Params{MinGap: cfg.gap, RatioThreshold: cfg.ratio}).Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// builder returns the serve.Builder for the configured data source;
// every reload re-reads the snapshot file or re-globs and re-ingests
// the MRT archives, so a reload picks up replaced files.
func builder(cfg *config) serve.Builder {
	if cfg.snapshot != "" {
		return func(context.Context) (*bgpintent.Result, bgpintent.SnapshotInfo, string, error) {
			f, err := os.Open(cfg.snapshot)
			if err != nil {
				return nil, bgpintent.SnapshotInfo{}, "", err
			}
			defer f.Close()
			res, info, err := bgpintent.ReadSnapshot(f)
			if err != nil {
				return nil, bgpintent.SnapshotInfo{}, "", err
			}
			return res, info, "snapshot:" + filepath.Base(cfg.snapshot), nil
		}
	}
	return func(ctx context.Context) (*bgpintent.Result, bgpintent.SnapshotInfo, string, error) {
		ribs, err := expand(cfg.ribGlob)
		if err != nil {
			return nil, bgpintent.SnapshotInfo{}, "", err
		}
		updates, err := expand(cfg.updGlob)
		if err != nil {
			return nil, bgpintent.SnapshotInfo{}, "", err
		}
		if len(ribs)+len(updates) == 0 {
			return nil, bgpintent.SnapshotInfo{}, "", fmt.Errorf("globs matched no files")
		}
		// The builder honors its context: a daemon shutting down mid-
		// reload abandons the build instead of finishing it into the void.
		c, stats, err := bgpintent.LoadMRT(ctx,
			bgpintent.Sources{RIBs: ribs, Updates: updates, OrgPath: cfg.as2org},
			bgpintent.LoadOptions{Strict: cfg.strict, MaxErrorRate: cfg.maxErr, Parallelism: cfg.par})
		if err != nil {
			return nil, bgpintent.SnapshotInfo{}, "", err
		}
		log.Printf("ingest: %s", stats.Summary())
		res, err := c.ClassifyContext(ctx,
			bgpintent.Params{MinGap: cfg.gap, RatioThreshold: cfg.ratio, Parallelism: cfg.par})
		if err != nil {
			return nil, bgpintent.SnapshotInfo{}, "", err
		}
		source := fmt.Sprintf("mrt:%d files", len(ribs)+len(updates))
		return res, c.SnapshotInfo(source), source, nil
	}
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}

	start := time.Now()
	srv, err := serve.New(ctx, builder(cfg), log.Printf)
	if err != nil {
		return err
	}
	snap := srv.Snapshot()
	fmt.Fprintf(stdout, "ready: %v (startup %v)\n", snap, time.Since(start).Round(time.Millisecond))

	// SIGHUP: rebuild and swap with zero downtime.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if _, err := srv.Reload(context.Background()); err != nil {
				log.Printf("SIGHUP reload failed: %v", err)
			}
		}
	}()

	if cfg.debugAddr != "" {
		dbg := http.NewServeMux()
		dbg.HandleFunc("/debug/pprof/", pprof.Index)
		dbg.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dbg.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dbg.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dbg.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", cfg.debugAddr)
			if err := http.ListenAndServe(cfg.debugAddr, dbg); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	return srv.ListenAndServe(ctx, serve.ServeConfig{
		Addr:         cfg.addr,
		DrainTimeout: cfg.drainTimeout,
		OnListen: func(a net.Addr) {
			fmt.Fprintf(stdout, "listening on %s\n", a)
		},
	})
}

func expand(glob string) ([]string, error) {
	if glob == "" {
		return nil, nil
	}
	files, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("bad glob %q: %v", glob, err)
	}
	return files, nil
}

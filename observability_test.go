package bgpintent

import (
	"bytes"
	"context"
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bgpintent/internal/obs"
)

// TestParamsValidate is the contract table for Params.Validate: zero
// values mean "paper default" and always pass; set values must make
// sense.
func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"zero", Params{}, true},
		{"defaults", DefaultParams(), true},
		{"gap only", Params{MinGap: 200}, true},
		{"ratio 1", Params{RatioThreshold: 1}, true},
		{"ratio large", Params{RatioThreshold: 1e9}, true},
		{"negative gap", Params{MinGap: -1}, false},
		{"negative ratio", Params{RatioThreshold: -2}, false},
		{"fractional ratio", Params{RatioThreshold: 0.5}, false},
		{"tiny ratio", Params{RatioThreshold: 1e-9}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate(%+v) = %v, want nil", tc.p, err)
			}
			if !tc.ok && err == nil {
				t.Errorf("Validate(%+v) accepted", tc.p)
			}
		})
	}
}

func TestClassifyContextRejectsInvalidParams(t *testing.T) {
	c, err := NewSyntheticCorpus(CorpusOptions{Small: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ClassifyContext(context.Background(), Params{RatioThreshold: 0.5}); err == nil {
		t.Error("ClassifyContext accepted RatioThreshold 0.5")
	}
}

// TestObservedLoadAndClassifyIdentical is the observability no-op
// contract: attaching an Observer (at any worker count) changes no
// byte of the pipeline's output.
func TestObservedLoadAndClassifyIdentical(t *testing.T) {
	ribs, updates, orgPath := writeParallelFixture(t)
	src := Sources{RIBs: ribs, Updates: updates, OrgPath: orgPath}

	base, _, err := LoadMRT(context.Background(), src, LoadOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	baseRes, err := base.ClassifyContext(context.Background(), Params{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var baseTSV bytes.Buffer
	if err := baseRes.WriteTSV(&baseTSV); err != nil {
		t.Fatal(err)
	}
	info := SnapshotInfo{Created: time.Unix(1714521600, 0).UTC(), Source: "obs-test",
		Tuples: base.Tuples(), Paths: base.Paths()}
	var baseSnap bytes.Buffer
	if err := baseRes.WriteSnapshot(&baseSnap, info); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		col := &obs.Collector{}
		c, stats, err := LoadMRT(context.Background(), src, LoadOptions{
			Parallelism: workers, Observer: col, ProgressInterval: time.Millisecond,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Files != len(ribs)+len(updates) {
			t.Errorf("workers=%d: stats cover %d files, want %d", workers, stats.Files, len(ribs)+len(updates))
		}
		res, err := c.ClassifyContext(context.Background(), Params{Parallelism: workers, Observer: col})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var tsv bytes.Buffer
		if err := res.WriteTSV(&tsv); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tsv.Bytes(), baseTSV.Bytes()) {
			t.Errorf("workers=%d: observed TSV differs from unobserved baseline", workers)
		}
		var snap bytes.Buffer
		if err := res.WriteSnapshot(&snap, info); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap.Bytes(), baseSnap.Bytes()) {
			t.Errorf("workers=%d: observed snapshot differs from unobserved baseline", workers)
		}

		// The span stream must cover every load + classify stage.
		seen := map[Stage]bool{}
		for _, s := range col.Spans() {
			seen[s.Stage] = true
		}
		for _, stage := range []Stage{
			StageOpen, StageDecode, StageStoreAdd, StageStitch,
			StageObserve, StageCluster, StageRatio, StageClassify,
		} {
			if !seen[stage] {
				t.Errorf("workers=%d: no span for stage %q", workers, stage)
			}
		}
		evs := col.Events()
		if len(evs) == 0 || !evs[len(evs)-1].Final {
			t.Errorf("workers=%d: progress stream does not end with a final event (%d events)", workers, len(evs))
		}
		final := evs[len(evs)-1]
		if final.Files != int64(len(ribs)+len(updates)) || final.FilesDone != final.Files {
			t.Errorf("workers=%d: final progress files=%d/%d, want %d/%d",
				workers, final.FilesDone, final.Files, len(ribs)+len(updates), len(ribs)+len(updates))
		}
		if final.Records == 0 || final.Tuples == 0 {
			t.Errorf("workers=%d: final progress carries no throughput (records=%d tuples=%d)",
				workers, final.Records, final.Tuples)
		}
	}
}

// settleGoroutines polls until the goroutine count returns to the
// baseline (GC of test infrastructure can keep strays briefly alive).
func settleGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle to %d (now %d):\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLoadMRTCancellation cancels a load mid-decode (from an observer
// hook, so cancellation strikes while workers are busy) and checks the
// error and that no worker goroutine leaks.
func TestLoadMRTCancellation(t *testing.T) {
	ribs, updates, orgPath := writeParallelFixture(t)
	src := Sources{RIBs: ribs, Updates: updates, OrgPath: orgPath}
	baseline := runtime.NumGoroutine()

	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var once atomic.Bool
		hook := obs.Funcs{
			OnStageStart: func(stage Stage, label string) {
				// First decode start: workers are mid-flight. Cancel.
				if stage == StageDecode && once.CompareAndSwap(false, true) {
					cancel()
				}
			},
		}
		_, _, err := LoadMRT(ctx, src, LoadOptions{Parallelism: workers, Observer: hook})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: LoadMRT after cancel = %v, want context.Canceled", workers, err)
		}
		cancel()
		settleGoroutines(t, baseline)
	}

	// A context canceled before the call aborts before any decode work.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := LoadMRT(ctx, src, LoadOptions{Parallelism: 4})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled LoadMRT = %v, want context.Canceled", err)
	}
	settleGoroutines(t, baseline)
}

// TestClassifyContextCancellation cancels classification and checks
// context.Canceled surfaces with no goroutine leak.
func TestClassifyContextCancellation(t *testing.T) {
	c, err := NewSyntheticCorpus(CorpusOptions{Small: true})
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()

	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := c.ClassifyContext(ctx, Params{Parallelism: workers})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: ClassifyContext after cancel = %v, want context.Canceled", workers, err)
		}
		settleGoroutines(t, baseline)
	}

	// Cancel mid-run, from the observe-stage start hook.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hook := obs.Funcs{
		OnStageStart: func(stage Stage, label string) {
			if stage == StageObserve {
				cancel()
			}
		},
	}
	_, err = c.ClassifyContext(ctx, Params{Parallelism: 4, Observer: hook})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("mid-run cancel = %v, want context.Canceled", err)
	}
	settleGoroutines(t, baseline)
}

// TestDeprecatedWrappersStillWork pins the compatibility contract: the
// pre-context entry points keep working and agree with the new API.
func TestDeprecatedWrappersStillWork(t *testing.T) {
	ribs, updates, orgPath := writeParallelFixture(t)

	c1, err := LoadMRTCorpus(ribs, updates, orgPath)
	if err != nil {
		t.Fatal(err)
	}
	c2, stats, err := LoadMRT(context.Background(),
		Sources{RIBs: ribs, Updates: updates, OrgPath: orgPath}, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Files == 0 {
		t.Error("LoadMRT reported no files")
	}
	if c1.Tuples() != c2.Tuples() || c1.Paths() != c2.Paths() {
		t.Errorf("wrapper corpus (%d tuples, %d paths) != LoadMRT corpus (%d tuples, %d paths)",
			c1.Tuples(), c1.Paths(), c2.Tuples(), c2.Paths())
	}

	var tsv1, tsv2 bytes.Buffer
	if err := c1.Classify(DefaultParams()).WriteTSV(&tsv1); err != nil {
		t.Fatal(err)
	}
	res2, err := c2.ClassifyContext(context.Background(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.WriteTSV(&tsv2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tsv1.Bytes(), tsv2.Bytes()) {
		t.Error("Classify and ClassifyContext disagree")
	}

	// The deprecated Classify panics on parameters ClassifyContext
	// rejects — documented, so pin it.
	defer func() {
		r := recover()
		if r == nil {
			t.Error("Classify did not panic on invalid params")
		} else if msg, ok := r.(error); !ok || !strings.Contains(msg.Error(), "RatioThreshold") {
			t.Errorf("Classify panic = %v", r)
		}
	}()
	c1.Classify(Params{RatioThreshold: 0.5})
}

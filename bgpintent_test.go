package bgpintent

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bgpintent/internal/corpus"
)

func smallCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := NewSyntheticCorpus(CorpusOptions{Small: true, Days: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCategoryString(t *testing.T) {
	if Unknown.String() != "unknown" || Action.String() != "action" || Information.String() != "information" {
		t.Error("category strings wrong")
	}
}

func TestCommunityString(t *testing.T) {
	if got := Comm(1299, 2569).String(); got != "1299:2569" {
		t.Errorf("String = %q", got)
	}
}

func TestSyntheticClassify(t *testing.T) {
	c := smallCorpus(t)
	if c.Tuples() == 0 || c.Paths() == 0 {
		t.Fatal("empty corpus")
	}
	res := c.Classify(DefaultParams())
	action, info := res.Counts()
	if action == 0 || info == 0 {
		t.Fatalf("counts = %d/%d", action, info)
	}
	if info <= action {
		t.Errorf("information (%d) should outnumber action (%d)", info, action)
	}

	labeled := res.Labeled()
	if len(labeled) != action+info {
		t.Errorf("Labeled len = %d, want %d", len(labeled), action+info)
	}
	for i := 1; i < len(labeled); i++ {
		a, b := labeled[i-1].Community, labeled[i].Community
		if a.ASN > b.ASN || (a.ASN == b.ASN && a.Value >= b.Value) {
			t.Fatal("Labeled not sorted")
		}
	}

	// Accuracy against ground truth.
	correct, total := 0, 0
	for _, lc := range labeled {
		truth, err := c.GroundTruth(lc.Community)
		if err != nil {
			t.Fatal(err)
		}
		if truth == Unknown {
			continue
		}
		total++
		if truth == lc.Category {
			correct++
		}
	}
	if total < 100 {
		t.Fatalf("only %d ground-truth communities", total)
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Errorf("accuracy = %.3f", acc)
	}
}

func TestResultTSV(t *testing.T) {
	c := smallCorpus(t)
	res := c.Classify(DefaultParams())
	var buf bytes.Buffer
	if err := res.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	action, info := res.Counts()
	largeAction, largeInfo := res.LargeCounts()
	if len(lines) != action+info+largeAction+largeInfo {
		t.Errorf("TSV lines = %d, want %d", len(lines), action+info+largeAction+largeInfo)
	}
	// A mixed corpus emits the 3-column kind-qualified format; a
	// classic-only corpus keeps the original 2-column layout.
	wantCols := 2
	if res.LargeObservedCount() > 0 {
		wantCols = 3
	}
	for _, l := range lines[:5] {
		parts := strings.Split(l, "\t")
		if len(parts) != wantCols || !strings.Contains(parts[0], ":") {
			t.Fatalf("bad TSV line %q", l)
		}
		if parts[1] != "action" && parts[1] != "information" {
			t.Fatalf("bad category %q", parts[1])
		}
		if wantCols == 3 && parts[2] != "classic" && parts[2] != "large" {
			t.Fatalf("bad kind %q", parts[2])
		}
	}
}

func TestExcludedReasons(t *testing.T) {
	c := smallCorpus(t)
	res := c.Classify(DefaultParams())
	foundPrivate, foundNeverOnPath := false, false
	for _, comm := range c.Communities() {
		if reason, ok := res.Excluded(comm); ok {
			switch reason {
			case ExcludedPrivateASN:
				foundPrivate = true
			case ExcludedNeverOnPath:
				foundNeverOnPath = true
			}
			if got := res.Category(comm); got != Unknown {
				t.Errorf("excluded %v classified as %v", comm, got)
			}
		}
	}
	if !foundPrivate || !foundNeverOnPath {
		t.Errorf("exclusion reasons: private=%v never-on-path=%v; want both", foundPrivate, foundNeverOnPath)
	}
}

func TestMRTCorpusMatchesSynthetic(t *testing.T) {
	// Write the synthetic corpus to MRT and reload it through the public
	// loader: tuple counts and classification must match.
	cfg := corpus.TinyConfig()
	syn, err := corpus.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	var ribs []string
	for day := 0; day < cfg.Days; day++ {
		res := syn.Sim.RunDay(day)
		for col := 0; col < syn.Sim.Collectors(); col++ {
			p := filepath.Join(dir, "rc"+string(rune('0'+col))+"-day"+string(rune('0'+day))+".rib.mrt")
			f, err := os.Create(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := syn.Sim.WriteRIB(f, uint32(1714521600+day*86400), col, res); err != nil {
				t.Fatal(err)
			}
			f.Close()
			ribs = append(ribs, p)
		}
	}
	orgPath := filepath.Join(dir, "as2org.txt")
	f, err := os.Create(orgPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := syn.Orgs.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	loaded, err := LoadMRTCorpus(ribs, nil, orgPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Tuples() != syn.Store.Len() {
		t.Errorf("loaded %d tuples, synthetic store has %d", loaded.Tuples(), syn.Store.Len())
	}
	if loaded.Paths() != syn.Store.PathCount() {
		t.Errorf("loaded %d paths, synthetic store has %d", loaded.Paths(), syn.Store.PathCount())
	}
	res := loaded.Classify(DefaultParams())
	action, info := res.Counts()
	if action == 0 || info == 0 {
		t.Fatalf("MRT-loaded classification degenerate: %d/%d", action, info)
	}
	if loaded.LargeCommunities() == 0 {
		t.Error("large communities lost in the MRT round trip")
	}
	if loaded.LargeCommunities() != syn.Store.LargeCommunityCount() {
		t.Errorf("large communities: loaded %d, synthetic %d",
			loaded.LargeCommunities(), syn.Store.LargeCommunityCount())
	}
}

func TestLoadMRTCorpusErrors(t *testing.T) {
	if _, err := LoadMRTCorpus([]string{"/nonexistent.mrt"}, nil, ""); err == nil {
		t.Error("missing file: want error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.mrt")
	if err := os.WriteFile(bad, []byte("this is not mrt data at all.."), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMRTCorpus([]string{bad}, nil, ""); err == nil {
		t.Error("garbage file: want error")
	}
}

func TestSyntheticOnlyMethods(t *testing.T) {
	mrtCorpus := &Corpus{}
	if _, err := mrtCorpus.SimulateDay(0); err != ErrNotSynthetic {
		t.Errorf("SimulateDay err = %v", err)
	}
	if _, err := mrtCorpus.InferLocations(); err != ErrNotSynthetic {
		t.Errorf("InferLocations err = %v", err)
	}
	if _, err := mrtCorpus.GroundTruth(Comm(1, 1)); err != ErrNotSynthetic {
		t.Errorf("GroundTruth err = %v", err)
	}
	if _, err := mrtCorpus.DictionaryTSV(); err != ErrNotSynthetic {
		t.Errorf("DictionaryTSV err = %v", err)
	}
}

func TestLocationFilterFlow(t *testing.T) {
	c := smallCorpus(t)
	locs, err := c.InferLocations()
	if err != nil {
		t.Fatal(err)
	}
	if len(locs) == 0 {
		t.Fatal("no location inferences")
	}
	res := c.Classify(DefaultParams())
	kept, dropped := res.FilterActions(locs)
	if len(kept)+len(dropped) != len(locs) {
		t.Error("filter lost inferences")
	}
	if len(dropped) == 0 {
		t.Error("no action communities dropped; Table 1 flow inert")
	}
}

func TestSimulateDayDeterministic(t *testing.T) {
	c := smallCorpus(t)
	a, err := c.SimulateDay(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.SimulateDay(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	if len(a) == 0 {
		t.Fatal("no views")
	}
}

func TestDictionaryTSV(t *testing.T) {
	c := smallCorpus(t)
	tsv, err := c.DictionaryTSV()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tsv, "location") && !strings.Contains(tsv, "suppress") {
		t.Errorf("dictionary TSV looks empty: %q", tsv[:min(len(tsv), 100)])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestLoadMRTUpdatesFiles(t *testing.T) {
	cfg := corpus.TinyConfig()
	syn, err := corpus.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res := syn.Sim.RunDay(0)
	var updates []string
	for col := 0; col < syn.Sim.Collectors(); col++ {
		p := filepath.Join(dir, "u"+string(rune('0'+col))+".mrt")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := syn.Sim.WriteUpdates(f, 1714521600, col, res, 0.5); err != nil {
			t.Fatal(err)
		}
		f.Close()
		updates = append(updates, p)
	}
	loaded, err := LoadMRTCorpus(nil, updates, "")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Tuples() == 0 {
		t.Fatal("no tuples from updates files")
	}
	res2 := loaded.Classify(DefaultParams())
	if a, i := res2.Counts(); a+i == 0 {
		t.Fatal("nothing classified from updates corpus")
	}
}

func TestDescribe(t *testing.T) {
	c := smallCorpus(t)
	res := c.Classify(DefaultParams())
	for _, lc := range res.Labeled() {
		out := c.Describe(lc.Community, res)
		if !strings.Contains(out, lc.Community.String()) || !strings.Contains(out, "truth=") {
			t.Fatalf("Describe = %q", out)
		}
		break
	}
	// Excluded community renders its reason.
	for _, comm := range c.Communities() {
		if _, ok := res.Excluded(comm); ok {
			out := c.Describe(comm, res)
			if !strings.Contains(out, "excluded") {
				t.Fatalf("Describe(excluded) = %q", out)
			}
			break
		}
	}
}

func TestClassifyCustomParams(t *testing.T) {
	c := smallCorpus(t)
	// Degenerate parameters must still produce a coherent result.
	res := c.Classify(Params{MinGap: 0, RatioThreshold: 1})
	if a, i := res.Counts(); a+i == 0 {
		t.Fatal("nothing classified with custom params")
	}
	// Zero params fall back to the paper defaults.
	def := c.Classify(Params{})
	ref := c.Classify(DefaultParams())
	a1, i1 := def.Counts()
	a2, i2 := ref.Counts()
	if a1 != a2 || i1 != i2 {
		t.Errorf("zero params (%d/%d) differ from defaults (%d/%d)", a1, i1, a2, i2)
	}
}

func TestGroundTruthSubKnownValues(t *testing.T) {
	c := smallCorpus(t)
	res := c.Classify(DefaultParams())
	seen := map[string]bool{}
	for _, lc := range res.Labeled() {
		sub, err := c.GroundTruthSub(lc.Community)
		if err != nil {
			t.Fatal(err)
		}
		seen[sub] = true
	}
	for _, want := range []string{"location", "suppress", "relationship"} {
		if !seen[want] {
			t.Errorf("no classified community with ground-truth sub %q", want)
		}
	}
}

func TestLoadGzippedMRT(t *testing.T) {
	cfg := corpus.TinyConfig()
	cfg.Days = 0
	syn, err := corpus.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := syn.Sim.RunDay(0)
	dir := t.TempDir()
	plain := filepath.Join(dir, "rib.mrt")
	f, err := os.Create(plain)
	if err != nil {
		t.Fatal(err)
	}
	if err := syn.Sim.WriteRIB(f, 1, 0, res); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// gzip the same bytes.
	raw, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(dir, "rib.mrt.gz")
	gf, err := os.Create(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(gf)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	zw.Close()
	gf.Close()

	a, err := LoadMRTCorpus([]string{plain}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadMRTCorpus([]string{gzPath}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if a.Tuples() != b.Tuples() || a.Paths() != b.Paths() {
		t.Errorf("gzip load differs: %d/%d vs %d/%d", a.Tuples(), a.Paths(), b.Tuples(), b.Paths())
	}
	// A corrupt gzip file must fail cleanly.
	bad := filepath.Join(dir, "bad.mrt.gz")
	if err := os.WriteFile(bad, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMRTCorpus([]string{bad}, nil, ""); err == nil {
		t.Error("corrupt gzip accepted")
	}
}

func TestResultClusters(t *testing.T) {
	c := smallCorpus(t)
	res := c.Classify(DefaultParams())
	clusters := res.Clusters()
	if len(clusters) == 0 {
		t.Fatal("no clusters")
	}
	total := 0
	for i, cl := range clusters {
		if cl.Lo > cl.Hi || cl.Size == 0 {
			t.Fatalf("bad cluster %+v", cl)
		}
		if cl.Category == Unknown {
			t.Fatalf("cluster without label: %+v", cl)
		}
		if i > 0 && clusters[i-1].ASN == cl.ASN && clusters[i-1].Hi >= cl.Lo {
			t.Fatalf("clusters overlap: %+v %+v", clusters[i-1], cl)
		}
		total += cl.Size
	}
	action, info := res.Counts()
	if total != action+info {
		t.Errorf("cluster members = %d, labeled = %d", total, action+info)
	}
}

func TestRefineInformation(t *testing.T) {
	c := smallCorpus(t)
	res := c.Classify(DefaultParams())
	refined, err := c.RefineInformation(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(refined) == 0 {
		t.Fatal("no refined communities")
	}
	kinds := map[string]int{}
	for _, rc := range refined {
		if res.Category(rc.Community) != Information {
			t.Fatalf("refined non-information community %v", rc.Community)
		}
		kinds[rc.Kind]++
	}
	for _, want := range []string{"location", "other-info"} {
		if kinds[want] == 0 {
			t.Errorf("no communities refined as %q (got %v)", want, kinds)
		}
	}
	// MRT corpora cannot refine (no oracles).
	if _, err := (&Corpus{}).RefineInformation(res); err != ErrNotSynthetic {
		t.Errorf("err = %v", err)
	}
}

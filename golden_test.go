package bgpintent

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"
)

// TestGoldenEquivalence pins the classifier output to goldens captured
// from the pre-columnar seed implementation: the columnar tuple store
// and CSR community index must reproduce WriteTSV and snapshot bytes
// exactly, at every worker count. Regenerate the goldens with
// BGPINTENT_GEN_GOLDENS=1 only when the output format itself changes
// deliberately.
// TestGoldenClassicEquivalence pins the classic-only output contract:
// a corpus without any large communities must reproduce the pre-large-
// community TSV, JSON, v1 snapshot, and v2 snapshot bytes exactly, at
// every worker count. This is the backward-compatibility guarantee —
// making large communities first-class inference subjects must not
// move a single byte of classic-only output.
func TestGoldenClassicEquivalence(t *testing.T) {
	want := map[string][]byte{}
	for _, name := range []string{"tsv", "json", "snap", "v2snap"} {
		b, err := os.ReadFile("testdata/golden_classic." + name)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = b
	}
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c, err := NewSyntheticCorpus(CorpusOptions{Small: true, DisableLargeCommunities: true})
			if err != nil {
				t.Fatal(err)
			}
			if n := c.LargeCommunities(); n != 0 {
				t.Fatalf("classic corpus observed %d large communities", n)
			}
			res := c.Classify(Params{Parallelism: workers})
			info := SnapshotInfo{Created: time.Unix(1714521600, 0).UTC(), Source: "golden",
				Tuples: c.Tuples(), Paths: c.Paths(), VantagePoints: len(c.VantagePoints()),
				Communities: len(c.Communities()), LargeCommunities: c.LargeCommunities()}
			got := map[string]func(*bytes.Buffer) error{
				"tsv":    func(b *bytes.Buffer) error { return res.WriteTSV(b) },
				"json":   func(b *bytes.Buffer) error { return res.WriteJSON(b) },
				"snap":   func(b *bytes.Buffer) error { return res.WriteSnapshot(b, info) },
				"v2snap": func(b *bytes.Buffer) error { return res.WriteSnapshotV2(b, info) },
			}
			for name, write := range got {
				var buf bytes.Buffer
				if err := write(&buf); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !bytes.Equal(buf.Bytes(), want[name]) {
					t.Errorf("%s output differs from classic golden (%d vs %d bytes)",
						name, buf.Len(), len(want[name]))
				}
			}
			// The flat auto-select writer must pick v2 for a classic-only
			// result, byte for byte.
			var flat bytes.Buffer
			if err := res.WriteSnapshotFlat(&flat, info); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(flat.Bytes(), want["v2snap"]) {
				t.Errorf("WriteSnapshotFlat on classic corpus differs from v2 golden (%d vs %d bytes)",
					flat.Len(), len(want["v2snap"]))
			}
		})
	}
}

func TestGoldenEquivalence(t *testing.T) {
	wantTSV, err := os.ReadFile("testdata/golden_synthetic.tsv")
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := os.ReadFile("testdata/golden_synthetic.snap")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c, err := NewSyntheticCorpus(CorpusOptions{Small: true})
			if err != nil {
				t.Fatal(err)
			}
			res := c.Classify(Params{Parallelism: workers})
			var tsv bytes.Buffer
			if err := res.WriteTSV(&tsv); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(tsv.Bytes(), wantTSV) {
				t.Errorf("TSV output differs from seed golden (%d vs %d bytes)", tsv.Len(), len(wantTSV))
			}
			// The snapshot info must match what the generator used, so
			// the meta section compares byte-for-byte too.
			info := SnapshotInfo{Created: time.Unix(1714521600, 0).UTC(), Source: "golden",
				Tuples: c.Tuples(), Paths: c.Paths(), VantagePoints: len(c.VantagePoints()),
				Communities: len(c.Communities()), LargeCommunities: c.LargeCommunities()}
			var snap bytes.Buffer
			if err := res.WriteSnapshot(&snap, info); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap.Bytes(), wantSnap) {
				t.Errorf("snapshot output differs from seed golden (%d vs %d bytes)", snap.Len(), len(wantSnap))
			}
		})
	}
}

package bgpintent

import (
	"bytes"
	"fmt"
	"os"
	"testing"
	"time"
)

// TestGoldenEquivalence pins the classifier output to goldens captured
// from the pre-columnar seed implementation: the columnar tuple store
// and CSR community index must reproduce WriteTSV and snapshot bytes
// exactly, at every worker count. Regenerate the goldens with
// BGPINTENT_GEN_GOLDENS=1 only when the output format itself changes
// deliberately.
func TestGoldenEquivalence(t *testing.T) {
	wantTSV, err := os.ReadFile("testdata/golden_synthetic.tsv")
	if err != nil {
		t.Fatal(err)
	}
	wantSnap, err := os.ReadFile("testdata/golden_synthetic.snap")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c, err := NewSyntheticCorpus(CorpusOptions{Small: true})
			if err != nil {
				t.Fatal(err)
			}
			res := c.Classify(Params{Parallelism: workers})
			var tsv bytes.Buffer
			if err := res.WriteTSV(&tsv); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(tsv.Bytes(), wantTSV) {
				t.Errorf("TSV output differs from seed golden (%d vs %d bytes)", tsv.Len(), len(wantTSV))
			}
			// The snapshot info must match what the generator used, so
			// the meta section compares byte-for-byte too.
			info := SnapshotInfo{Created: time.Unix(1714521600, 0).UTC(), Source: "golden",
				Tuples: c.Tuples(), Paths: c.Paths(), VantagePoints: len(c.VantagePoints()),
				Communities: len(c.Communities()), LargeCommunities: c.LargeCommunities()}
			var snap bytes.Buffer
			if err := res.WriteSnapshot(&snap, info); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap.Bytes(), wantSnap) {
				t.Errorf("snapshot output differs from seed golden (%d vs %d bytes)", snap.Len(), len(wantSnap))
			}
		})
	}
}

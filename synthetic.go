package bgpintent

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"bgpintent/internal/asrel"
	"bgpintent/internal/dict"
	"bgpintent/internal/finegrained"
	"bgpintent/internal/locinfer"
	"bgpintent/internal/simulate"
)

// ErrNotSynthetic is returned by corpus methods that need the synthetic
// ground truth (topology, geography) when the corpus was loaded from
// MRT files instead.
var ErrNotSynthetic = errors.New("bgpintent: operation requires a synthetic corpus")

// RouteView is one vantage point's route for one prefix.
type RouteView struct {
	VP          uint32
	Prefix      string
	Path        []uint32
	Communities []Community
}

// SimulateDay runs the synthetic corpus's simulator for one more day and
// returns the vantage-point views, without adding them to the corpus.
// Useful for monitoring scenarios (see examples/anomaly).
func (c *Corpus) SimulateDay(day int) ([]RouteView, error) {
	if c.syn == nil {
		return nil, ErrNotSynthetic
	}
	res := c.syn.Sim.RunDay(day)
	out := make([]RouteView, 0, len(res.Views))
	for i := range res.Views {
		v := &res.Views[i]
		rv := RouteView{VP: v.VP, Prefix: v.Prefix.String(), Path: v.Path}
		for _, comm := range v.Comms {
			rv.Communities = append(rv.Communities, Community{ASN: comm.ASN(), Value: comm.Value()})
		}
		out = append(out, rv)
	}
	return out, nil
}

// LocationInference is one community inferred to signal a location, with
// its evidence.
type LocationInference struct {
	Community Community
	Paths     int
	Origins   int
	Cities    int
}

// InferLocations runs the bundled reimplementation of Da Silva et al.'s
// location-community inference (the method the paper improves in
// Table 1). It needs session geography, which only the synthetic corpus
// carries (the original uses PeeringDB/facility data).
func (c *Corpus) InferLocations() ([]LocationInference, error) {
	if c.syn == nil {
		return nil, ErrNotSynthetic
	}
	locs := locinfer.Infer(c.store, c.syn.Topo, locinfer.DefaultConfig())
	out := make([]LocationInference, 0, len(locs))
	for _, l := range locs {
		out = append(out, LocationInference{
			Community: Community{ASN: l.Comm.ASN(), Value: l.Comm.Value()},
			Paths:     l.Paths,
			Origins:   l.Origins,
			Cities:    l.Cities,
		})
	}
	return out, nil
}

// FilterActions splits location inferences into those kept and those
// dropped because the intent classification says they are action
// communities — the paper's §6 improvement that raised the location
// method's precision from 68.2% to 94.8%.
func (r *Result) FilterActions(locs []LocationInference) (kept, dropped []LocationInference) {
	for _, l := range locs {
		if r.Category(l.Community) == Action {
			dropped = append(dropped, l)
		} else {
			kept = append(kept, l)
		}
	}
	return kept, dropped
}

// GroundTruth returns the generator's label for a community (synthetic
// corpora only): what the "operator documentation" says. Communities the
// generator never defined return Unknown.
func (c *Corpus) GroundTruth(comm Community) (Category, error) {
	if c.syn == nil {
		return Unknown, ErrNotSynthetic
	}
	return fromDictCategory(c.syn.TruthCategory(uint32(comm.ASN), comm.Value)), nil
}

// GroundTruthSub returns the generator's fine-grained label (e.g.
// "location", "suppress") for a community, synthetic corpora only.
func (c *Corpus) GroundTruthSub(comm Community) (string, error) {
	if c.syn == nil {
		return "", ErrNotSynthetic
	}
	a, ok := c.syn.Topo.ASes[uint32(comm.ASN)]
	if ok && a.Plan != nil && a.Plan.ASN == uint32(comm.ASN) {
		if d, ok := a.Plan.Lookup(comm.Value); ok {
			return d.Sub.String(), nil
		}
	}
	for _, ix := range c.syn.Topo.IXPs {
		if ix.RouteServerASN == uint32(comm.ASN) && ix.Plan != nil {
			if d, ok := ix.Plan.Lookup(comm.Value); ok {
				return d.Sub.String(), nil
			}
		}
	}
	return dict.SubNone.String(), nil
}

// DictionaryTSV renders the synthetic corpus's ground-truth dictionary
// (range regexes per AS), the dataset the paper validates against.
func (c *Corpus) DictionaryTSV() (string, error) {
	if c.syn == nil {
		return "", ErrNotSynthetic
	}
	var b strings.Builder
	if _, err := c.syn.Dict.WriteTo(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Describe renders a short human summary of a community combining the
// inference and (when synthetic) the ground truth.
func (c *Corpus) Describe(comm Community, r *Result) string {
	out := fmt.Sprintf("%s inferred=%s", comm, r.Category(comm))
	if reason, ok := r.Excluded(comm); ok {
		out += fmt.Sprintf(" (excluded: %s)", reason)
	}
	if c.syn != nil {
		truth, _ := c.GroundTruth(comm)
		sub, _ := c.GroundTruthSub(comm)
		out += fmt.Sprintf(" truth=%s/%s", truth, sub)
	}
	return out
}

// RefinedCommunity pairs an information community with its inferred
// fine-grained sub-category.
type RefinedCommunity struct {
	Community Community
	// Kind is "location", "relationship", "rov" or "other-info".
	Kind string
}

// RefineInformation runs the §7 future-work extension over the corpus:
// information communities from the result are sub-categorized using
// geographic, relationship and RPKI context. Synthetic corpora only
// (the oracles come from the generator).
func (c *Corpus) RefineInformation(r *Result) ([]RefinedCommunity, error) {
	if c.syn == nil {
		return nil, ErrNotSynthetic
	}
	rels := asrel.Infer(c.store.AllPaths())
	res := finegrained.Classify(c.store, r.inferences(), c.syn.Topo,
		finegrained.ROVFunc(simulate.ROVState), rels, finegrained.DefaultConfig())
	out := make([]RefinedCommunity, 0, len(res.Kinds))
	for comm, kind := range res.Kinds {
		out = append(out, RefinedCommunity{
			Community: Community{ASN: comm.ASN(), Value: comm.Value()},
			Kind:      kind.String(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Community, out[j].Community
		if a.ASN != b.ASN {
			return a.ASN < b.ASN
		}
		return a.Value < b.Value
	})
	return out, nil
}

package bgpintent

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bgpintent/internal/corpus"
)

// writeParallelFixture emits a tiny-scale MRT corpus — RIB and updates
// files per collector — plus the as2org file, and returns the globs'
// expansions.
func writeParallelFixture(t *testing.T) (ribs, updates []string, orgPath string) {
	t.Helper()
	dir := t.TempDir()
	cfg := corpus.TinyConfig()
	cfg.Days = 0
	c, err := corpus.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const t0 = 1714521600
	for day := 0; day < 2; day++ {
		res := c.Sim.RunDay(day)
		for col := 0; col < c.Sim.Collectors(); col++ {
			ribPath := filepath.Join(dir, fmt.Sprintf("rc%02d.day%d.rib.mrt", col, day))
			f, err := os.Create(ribPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Sim.WriteRIB(f, uint32(t0+day*86400), col, res); err != nil {
				t.Fatal(err)
			}
			f.Close()
			ribs = append(ribs, ribPath)

			updPath := filepath.Join(dir, fmt.Sprintf("rc%02d.day%d.updates.mrt", col, day))
			uf, err := os.Create(updPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Sim.WriteUpdates(uf, uint32(t0+day*86400), col, res, 0.3); err != nil {
				t.Fatal(err)
			}
			uf.Close()
			updates = append(updates, updPath)
		}
	}
	orgPath = filepath.Join(dir, "as2org.txt")
	f, err := os.Create(orgPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Orgs.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return ribs, updates, orgPath
}

// TestParallelLoadEquivalence is the PR's determinism acceptance test:
// loading and classifying with 1, 2 and 8 workers yields identical
// LoadStats, identical Labeled()/Clusters() output, and byte-identical
// WriteTSV bytes.
func TestParallelLoadEquivalence(t *testing.T) {
	ribs, updates, orgPath := writeParallelFixture(t)

	type outcome struct {
		stats    LoadStats
		tuples   int
		paths    int
		labeled  []LabeledCommunity
		clusters []Cluster
		tsv      []byte
	}
	run := func(workers int) outcome {
		c, stats, err := LoadMRTCorpusOptions(ribs, updates, orgPath, LoadOptions{Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res := c.Classify(Params{Parallelism: workers})
		var buf bytes.Buffer
		if err := res.WriteTSV(&buf); err != nil {
			t.Fatal(err)
		}
		return outcome{
			stats:    stats,
			tuples:   c.Tuples(),
			paths:    c.Paths(),
			labeled:  res.Labeled(),
			clusters: res.Clusters(),
			tsv:      buf.Bytes(),
		}
	}

	ref := run(1)
	if ref.tuples == 0 || len(ref.labeled) == 0 {
		t.Fatalf("degenerate reference: %d tuples, %d labeled", ref.tuples, len(ref.labeled))
	}
	for _, workers := range []int{2, 8} {
		got := run(workers)
		if got.stats != ref.stats {
			t.Errorf("workers=%d: LoadStats = %+v, want %+v", workers, got.stats, ref.stats)
		}
		if got.tuples != ref.tuples || got.paths != ref.paths {
			t.Errorf("workers=%d: %d tuples/%d paths, want %d/%d",
				workers, got.tuples, got.paths, ref.tuples, ref.paths)
		}
		if !reflect.DeepEqual(got.labeled, ref.labeled) {
			t.Errorf("workers=%d: Labeled() differs", workers)
		}
		if !reflect.DeepEqual(got.clusters, ref.clusters) {
			t.Errorf("workers=%d: Clusters() differs", workers)
		}
		if !bytes.Equal(got.tsv, ref.tsv) {
			t.Errorf("workers=%d: WriteTSV output differs (%d vs %d bytes)",
				workers, len(got.tsv), len(ref.tsv))
		}
	}
}

// TestParallelLoadMatchesSyntheticPath: the MRT round trip at any worker
// count dedups to the same tuple count whether records arrive in file
// order or scrambled across workers — a guard against shard-routing
// bugs that would split one tuple across shards.
func TestParallelLoadMatchesSyntheticPath(t *testing.T) {
	ribs, updates, orgPath := writeParallelFixture(t)
	seq, _, err := LoadMRTCorpusOptions(ribs, updates, orgPath, LoadOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := LoadMRTCorpusOptions(ribs, updates, orgPath, LoadOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Tuples() != par.Tuples() || seq.Paths() != par.Paths() || seq.LargeCommunities() != par.LargeCommunities() {
		t.Fatalf("parallel load diverged: seq %d/%d/%d, par %d/%d/%d",
			seq.Tuples(), seq.Paths(), seq.LargeCommunities(),
			par.Tuples(), par.Paths(), par.LargeCommunities())
	}
	if !reflect.DeepEqual(seq.VantagePoints(), par.VantagePoints()) {
		t.Fatal("vantage point sets differ")
	}
	if !reflect.DeepEqual(seq.Communities(), par.Communities()) {
		t.Fatal("community sets differ")
	}
}
